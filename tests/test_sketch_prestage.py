"""The sketch pre-stage wired into the sensing pipeline.

Covers: SketchParams / SensorConfig sketch-knob validation and the gate
math; batch-mode agreement (sketch-on selection and feature matrices
identical to the exact path); streaming-mode promotion (materialized
originators are a superset of the exactly-analyzable ones, footprints
never overshoot exact); the exact querier roster; and the telemetry
the pre-stage publishes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.netmodel.world import NameStatus
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.selection import analyzable
from repro.sketch.prestage import DEFER, DUPLICATE, KEEP, SketchParams, SketchPreStage
from repro.telemetry import MetricsRegistry

WINDOW = 3600.0


def synthetic_entries(
    n_originators: int = 40, seed: int = 7, windows: int = 1
) -> list[QueryLogEntry]:
    """Originator ranks spread footprints across the analyzability bar."""
    rng = np.random.default_rng(seed)
    events: list[tuple[float, int, int]] = []
    for w in range(windows):
        for rank in range(n_originators):
            footprint = 1 + rank // 2
            for q in range(footprint):
                ts = w * WINDOW + float(rng.uniform(0.0, WINDOW - 1.0))
                querier = 1000 + (rank * 97 + q * 13) % 5000
                events.append((ts, querier, 0x0A00 + rank))
                if q % 3 == 0:  # an in-horizon duplicate
                    events.append((min(ts + 5.0, (w + 1) * WINDOW - 1e-6), querier, 0x0A00 + rank))
    events.sort()
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in events]


def directory_for(entries: list[QueryLogEntry]) -> StaticDirectory:
    return StaticDirectory(
        {
            e.querier: QuerierInfo(
                addr=e.querier,
                name=f"host{e.querier}.example.net",
                status=NameStatus.OK,
                asn=1 + e.querier % 5,
                country="jp" if e.querier % 2 else "us",
            )
            for e in entries
        }
    )


class TestSketchParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 0},
            {"depth": 0},
            {"hll_precision": 3},
            {"hll_precision": 17},
            {"fp_rate": 0.0},
            {"fp_rate": 1.0},
            {"capacity": 0},
            {"gate_queriers": 0},
            {"promote_queriers": 0},
            {"gate_queriers": 4, "promote_queriers": 5},
            {"dedup_seconds": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SketchParams(**kwargs)

    def test_defaults_are_consistent(self):
        params = SketchParams()
        assert params.promote_queriers <= params.gate_queriers


class TestSensorConfigSketchKnobs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sketch_width": 0},
            {"sketch_depth": 0},
            {"hll_precision": 3},
            {"hll_precision": 17},
            {"sketch_fp_rate": 0.0},
            {"sketch_fp_rate": 1.0},
            {"sketch_capacity": 0},
            {"sketch_margin": -0.1},
            {"sketch_margin": 1.0},
            {"sketch_promote_queriers": -1},
            {"min_queriers": 10, "sketch_margin": 0.5, "sketch_promote_queriers": 6},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SensorConfig(**kwargs)

    @pytest.mark.parametrize(
        ("min_queriers", "margin", "expected"),
        [(20, 0.5, 10), (10, 0.5, 5), (10, 0.0, 10), (3, 0.9, 1), (1, 0.5, 1)],
    )
    def test_gate_math(self, min_queriers, margin, expected):
        config = SensorConfig(min_queriers=min_queriers, sketch_margin=margin)
        assert config.sketch_gate_queriers == expected
        assert config.sketch_gate_queriers == max(
            1, math.ceil((1 - margin) * min_queriers)
        )

    def test_sketch_params_mirror_config(self):
        config = SensorConfig(
            min_queriers=10,
            sketch_enabled=True,
            sketch_width=512,
            sketch_depth=3,
            hll_precision=8,
            sketch_fp_rate=0.005,
            sketch_capacity=9999,
            seed=77,
        )
        params = config.sketch_params()
        assert (params.width, params.depth) == (512, 3)
        assert params.hll_precision == 8
        assert params.fp_rate == 0.005
        assert params.capacity == 9999
        assert params.gate_queriers == config.sketch_gate_queriers
        # promote=0 means auto: small, but never above the gate.
        assert 1 <= params.promote_queriers <= params.gate_queriers
        assert params.dedup_seconds == config.dedup_window
        assert params.seed == 77

    def test_explicit_promote_respected(self):
        config = SensorConfig(min_queriers=10, sketch_promote_queriers=2)
        assert config.sketch_params().promote_queriers == 2


class TestBatchAgreement:
    """Sketch-on batch runs must agree with the exact path."""

    def engines(self, min_queriers: int = 10):
        entries = synthetic_entries(windows=2)
        directory = directory_for(entries)
        exact = SensorEngine(
            directory, SensorConfig(window_seconds=WINDOW, min_queriers=min_queriers)
        )
        sketched = SensorEngine(
            directory,
            SensorConfig(
                window_seconds=WINDOW,
                min_queriers=min_queriers,
                sketch_enabled=True,
                sketch_capacity=len(entries),
            ),
        )
        return entries, exact, sketched

    def test_selected_sets_and_features_identical(self):
        entries, exact, sketched = self.engines()
        exact_sensed = exact.process(entries, 0.0, 2 * WINDOW, classify=False)
        sketch_sensed = sketched.process(entries, 0.0, 2 * WINDOW, classify=False)
        assert len(exact_sensed) == len(sketch_sensed) == 2
        for e_win, s_win in zip(exact_sensed, sketch_sensed):
            e_feat, s_feat = e_win.features, s_win.features
            assert set(e_feat.originators) == set(s_feat.originators)
            e_order = np.argsort(e_feat.originators)
            s_order = np.argsort(s_feat.originators)
            assert np.array_equal(
                e_feat.originators[e_order], s_feat.originators[s_order]
            )
            assert np.array_equal(e_feat.matrix[e_order], s_feat.matrix[s_order])
            assert np.array_equal(
                e_feat.footprints[e_order], s_feat.footprints[s_order]
            )

    def test_survivor_observations_are_exact(self):
        entries, exact, sketched = self.engines()
        exact_win = exact.windows(entries, 0.0, WINDOW)[0]
        sketch_win = sketched.windows(entries, 0.0, WINDOW)[0]
        assert sketch_win.prestage is not None
        assert sketch_win.prestage.exact_observations
        for originator, observation in sketch_win.observations.items():
            assert observation == exact_win.observations[originator]

    def test_roster_matches_exact_querier_universe(self):
        entries, exact, sketched = self.engines()
        exact_win = exact.windows(entries, 0.0, WINDOW)[0]
        sketch_win = sketched.windows(entries, 0.0, WINDOW)[0]
        exact_universe = set()
        for observation in exact_win.observations.values():
            exact_universe.update(observation.queriers)
        roster = sketch_win.querier_roster
        assert roster is not None
        assert set(int(q) for q in roster) == exact_universe
        assert bool((np.diff(roster) > 0).all())  # sorted unique

    def test_no_false_drops_on_this_workload(self):
        entries, exact, sketched = self.engines()
        exact_win = exact.windows(entries, 0.0, WINDOW)[0]
        sketch_win = sketched.windows(entries, 0.0, WINDOW)[0]
        footprints = {
            o: ob.footprint for o, ob in exact_win.observations.items()
        }
        assert sketch_win.prestage.false_drops(footprints, 10) == 0

    def test_out_of_order_entries_raise(self):
        entries, _, sketched = self.engines()
        shuffled = [entries[1], entries[0]] + entries[2:]
        with pytest.raises(ValueError, match="time-ordered"):
            sketched.windows(shuffled, 0.0, WINDOW)


class TestStreamingMode:
    def test_materialized_subset_with_bounded_trail(self):
        entries = synthetic_entries()
        config = SensorConfig(
            window_seconds=WINDOW, min_queriers=10, sketch_enabled=True,
            sketch_capacity=len(entries),
        )
        exact_engine = SensorEngine(config=SensorConfig(window_seconds=WINDOW, min_queriers=10))
        sketch_engine = SensorEngine(config=config)
        exact_win = exact_engine.windows(entries, 0.0, WINDOW)[0]
        for entry in entries:
            sketch_engine.ingest(entry)
        sketch_win = sketch_engine.finish(classify=False)[0].window
        prestage = sketch_win.prestage
        assert prestage is not None
        assert not prestage.exact_observations
        exact_analyzable = {
            o.originator for o in analyzable(exact_win, 10)
        }
        materialized = set(sketch_win.observations)
        # Every exactly-analyzable originator must have been promoted.
        assert exact_analyzable <= materialized
        for originator, observation in sketch_win.observations.items():
            exact_fp = exact_win.observations[originator].footprint
            assert observation.footprint <= exact_fp

    def test_observe_verdicts(self):
        params = SketchParams(promote_queriers=2, gate_queriers=2, capacity=1024)
        prestage = SketchPreStage(params)
        assert prestage.observe(0.0, querier=1, originator=9) == DEFER
        assert prestage.observe(1.0, querier=1, originator=9) == DUPLICATE
        verdict = prestage.observe(2.0, querier=2, originator=9)
        assert verdict in (KEEP, DEFER)  # estimate crosses 2 modulo HLL collisions
        for q in range(3, 20):
            verdict = prestage.observe(float(q), querier=q, originator=9)
        assert prestage.is_promoted(9)
        assert prestage.observe(30.5, querier=1, originator=9) in (KEEP, DUPLICATE)


class TestTelemetry:
    def test_sketch_metric_families_present(self):
        entries = synthetic_entries()
        registry = MetricsRegistry()
        engine = SensorEngine(
            directory_for(entries),
            SensorConfig(
                window_seconds=WINDOW, min_queriers=10,
                sketch_enabled=True, sketch_capacity=len(entries),
            ),
            registry=registry,
        )
        engine.process(entries, 0.0, WINDOW, classify=False)
        text = registry.to_prometheus()
        for family in (
            "repro_select_originators_total",
            "repro_sketch_gate_originators_total",
            "repro_sketch_events_total",
            "repro_sketch_memory_bytes",
            "repro_sketch_estimate_error",
        ):
            assert f"# TYPE {family}" in text, family

    def test_gate_counters_add_up(self):
        entries = synthetic_entries()
        registry = MetricsRegistry()
        engine = SensorEngine(
            directory_for(entries),
            SensorConfig(
                window_seconds=WINDOW, min_queriers=10,
                sketch_enabled=True, sketch_capacity=len(entries),
            ),
            registry=registry,
        )
        sensed = engine.process(entries, 0.0, WINDOW, classify=False)
        prestage = sensed[0].window.prestage
        gate = registry.get("repro_sketch_gate_originators_total")
        assert gate.value(result="kept") == prestage.gate_kept
        assert gate.value(result="dropped") == prestage.gate_dropped
        assert (
            prestage.gate_kept + prestage.gate_dropped == prestage.originators_seen
        )
        events = registry.get("repro_sketch_events_total")
        total_events = (
            events.value(result="unique")
            + events.value(result="duplicate")
        )
        assert total_events == len(entries)

    def test_sensed_telemetry_carries_sketch_block(self):
        entries = synthetic_entries()
        engine = SensorEngine(
            directory_for(entries),
            SensorConfig(
                window_seconds=WINDOW, min_queriers=10,
                sketch_enabled=True, sketch_capacity=len(entries),
            ),
        )
        sensed = engine.process(entries, 0.0, WINDOW, classify=False)[0]
        sketch = sensed.telemetry["sketch"]
        assert sketch["originators_seen"] == sensed.window.prestage.originators_seen
        assert set(sketch["memory_bytes"]) == {"bloom", "cms", "hll", "roster"}

    def test_exact_mode_has_no_sketch_block(self):
        entries = synthetic_entries()
        engine = SensorEngine(
            directory_for(entries),
            SensorConfig(window_seconds=WINDOW, min_queriers=10),
        )
        sensed = engine.process(entries, 0.0, WINDOW, classify=False)[0]
        assert "sketch" not in sensed.telemetry
        assert sensed.window.prestage is None


class TestPreStageProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_batch_gate_matches_scalar_gate(self, seed, n_originators):
        """One pre-stage fed scalar events == one fed the same batch."""
        rng = np.random.default_rng(seed)
        n = n_originators * 6
        timestamps = np.sort(rng.uniform(0.0, 600.0, n))
        queriers = rng.integers(1, 50, n).astype(np.int64)
        originators = rng.integers(1, n_originators + 1, n).astype(np.int64)
        params = SketchParams(gate_queriers=3, promote_queriers=3, capacity=4096, seed=int(seed))
        scalar = SketchPreStage(params)
        for t, q, o in zip(timestamps, queriers, originators):
            scalar.observe(float(t), int(q), int(o))
        batch = SketchPreStage(params)
        batch.observe_batch(timestamps, queriers, originators)
        assert scalar.events_unique == batch.events_unique
        assert scalar.events_duplicate == batch.events_duplicate
        assert np.array_equal(scalar.survivors(), batch.survivors())
        assert np.array_equal(scalar.roster_array(), batch.roster_array())

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_merge_matches_single_stage(self, seed):
        rng = np.random.default_rng(seed)
        n = 200
        timestamps = np.sort(rng.uniform(0.0, 600.0, n))
        queriers = rng.integers(1, 40, n).astype(np.int64)
        originators = rng.integers(1, 12, n).astype(np.int64)
        params = SketchParams(gate_queriers=3, promote_queriers=3, capacity=4096)
        whole = SketchPreStage(params)
        whole.observe_batch(timestamps, queriers, originators)
        left, right = SketchPreStage(params), SketchPreStage(params)
        half = n // 2
        left.observe_batch(timestamps[:half], queriers[:half], originators[:half])
        right.observe_batch(timestamps[half:], queriers[half:], originators[half:])
        merged = left | right
        # Sharded dedup can only miss cross-shard duplicates, so unique
        # counts are >= the single-stage ones (documented one-sided
        # semantics); the gate estimate itself is duplicate-insensitive.
        assert merged.events_unique >= whole.events_unique
        assert set(merged.survivors()) >= set(whole.survivors())
        assert np.array_equal(merged.roster_array(), whole.roster_array())
