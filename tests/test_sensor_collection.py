"""Tests for dedup and observation-window grouping (§ III-A/B)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.sensor.collection import (
    DEDUP_WINDOW_SECONDS,
    ObservationWindow,
    collect_window,
    dedup_entries,
)


def entry(ts: float, querier: int = 1, originator: int = 2) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


class TestDedup:
    def test_duplicate_within_window_dropped(self):
        entries = [entry(0.0), entry(10.0), entry(29.999)]
        assert dedup_entries(entries) == [entry(0.0)]

    def test_outside_window_kept(self):
        entries = [entry(0.0), entry(30.0)]
        assert dedup_entries(entries) == entries

    def test_window_measured_from_last_kept_not_last_seen(self):
        # Burst at 0, 20, 40: the 20s one is dropped; 40 is 40s after the
        # kept query at 0, so it survives (rate-limit semantics).
        entries = [entry(0.0), entry(20.0), entry(40.0)]
        assert dedup_entries(entries) == [entry(0.0), entry(40.0)]

    def test_distinct_pairs_not_deduped(self):
        entries = [
            entry(0.0, querier=1),
            entry(1.0, querier=2),
            entry(2.0, querier=1, originator=3),
        ]
        assert dedup_entries(entries) == entries

    def test_unordered_input_rejected(self):
        with pytest.raises(ValueError):
            dedup_entries([entry(10.0), entry(0.0)])

    def test_zero_window_keeps_everything(self):
        entries = [entry(0.0), entry(0.0), entry(0.1)]
        assert dedup_entries(entries, window=0.0) == entries

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            dedup_entries([], window=-1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000, allow_nan=False),
                st.integers(1, 3),
                st.integers(1, 3),
            ),
            max_size=50,
        )
    )
    def test_no_surviving_duplicates_within_window(self, raw):
        entries = [entry(t, q, o) for t, q, o in sorted(raw, key=lambda r: r[0])]
        kept = dedup_entries(entries)
        by_pair: dict[tuple[int, int], list[float]] = {}
        for e in kept:
            by_pair.setdefault((e.querier, e.originator), []).append(e.timestamp)
        for times in by_pair.values():
            for a, b in zip(times, times[1:]):
                assert b - a >= DEDUP_WINDOW_SECONDS

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10_000, allow_nan=False), max_size=50
        )
    )
    def test_output_subset_and_first_kept(self, times):
        entries = [entry(t) for t in sorted(times)]
        kept = dedup_entries(entries)
        assert set(e.timestamp for e in kept) <= set(e.timestamp for e in entries)
        if entries:
            assert kept[0] == entries[0]


class TestCollectWindow:
    def test_groups_by_originator(self):
        entries = [
            entry(0.0, querier=1, originator=10),
            entry(1.0, querier=2, originator=10),
            entry(2.0, querier=1, originator=20),
        ]
        window = collect_window(entries, 0.0, 100.0)
        assert len(window) == 2
        assert window.observations[10].footprint == 2
        assert window.observations[20].footprint == 1

    def test_time_range_is_half_open(self):
        entries = [entry(0.0), entry(50.0), entry(100.0)]
        window = collect_window(entries, 0.0, 100.0)
        assert window.observations[2].query_count == 2

    def test_dedup_applied(self):
        entries = [entry(0.0), entry(5.0)]
        window = collect_window(entries, 0.0, 100.0)
        assert window.observations[2].query_count == 1

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            collect_window([], 10.0, 10.0)

    def test_footprint_counts_unique_queriers(self):
        entries = [entry(float(i) * 40, querier=i % 3) for i in range(9)]
        window = collect_window(entries, 0.0, 1e6)
        assert window.observations[2].footprint == 3
        assert window.observations[2].query_count == 9

    def test_duration_days(self):
        window = ObservationWindow(start=0.0, end=86400.0 * 2)
        assert window.duration_days == 2.0

    def test_contains_and_get(self):
        window = collect_window([entry(0.0)], 0.0, 10.0)
        assert 2 in window
        assert window.get(2) is not None
        assert window.get(99) is None
