"""Tests for the framed binary (dnstap-style) log format."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.dnstap import MAGIC, VERSION, iter_frames, read_frames, write_frames
from repro.dnssim.message import QueryLogEntry


def entries_of(raw):
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in raw]


class TestRoundtrip:
    def test_simple(self, tmp_path):
        entries = entries_of([(1.5, 10, 20), (2.25, 11, 21)])
        path = tmp_path / "log.rbsc"
        assert write_frames(path, entries) == 2
        assert read_frames(path) == entries

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.rbsc"
        assert write_frames(path, []) == 0
        assert read_frames(path) == []

    def test_streaming_iteration(self, tmp_path):
        entries = entries_of([(float(i), i, i) for i in range(100)])
        path = tmp_path / "many.rbsc"
        write_frames(path, entries)
        iterator = iter_frames(path)
        assert next(iterator).querier == 0
        assert sum(1 for _ in iterator) == 99

    @given(
        raw=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9, allow_nan=False),
                st.integers(0, 2**32 - 1),
                st.integers(0, 2**32 - 1),
            ),
            max_size=60,
        )
    )
    def test_roundtrip_property(self, raw):
        import tempfile
        from pathlib import Path

        entries = entries_of(raw)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "log.rbsc"
            write_frames(path, entries)
            assert read_frames(path) == entries

    def test_smaller_than_text(self, tmp_path):
        from repro.datasets.io import write_log

        entries = entries_of([(float(i), i, i + 1) for i in range(500)])
        binary = tmp_path / "log.rbsc"
        text = tmp_path / "log.txt"
        write_frames(binary, entries)
        write_log(text, entries)
        assert binary.stat().st_size < text.stat().st_size / 2


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rbsc"
        path.write_bytes(b"XXXX\x00\x01")
        with pytest.raises(ValueError, match="magic"):
            read_frames(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.rbsc"
        path.write_bytes(struct.pack(">4sH", MAGIC, VERSION + 1))
        with pytest.raises(ValueError, match="version"):
            read_frames(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.rbsc"
        path.write_bytes(b"RB")
        with pytest.raises(ValueError, match="truncated"):
            read_frames(path)

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "bad.rbsc"
        good = tmp_path / "good.rbsc"
        write_frames(good, entries_of([(1.0, 2, 3)]))
        data = good.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="truncated frame body"):
            read_frames(path)

    def test_bad_frame_length(self, tmp_path):
        path = tmp_path / "bad.rbsc"
        path.write_bytes(struct.pack(">4sH", MAGIC, VERSION) + struct.pack(">H", 7) + b"\x00" * 7)
        with pytest.raises(ValueError, match="frame length"):
            read_frames(path)
