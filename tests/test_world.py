"""Tests for world construction and its sampling/allocation APIs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel import (
    ASKind,
    NameStatus,
    QuerierRole,
    World,
    WorldConfig,
    slash24,
)


class TestWorldBuild:
    def test_population_summary(self, small_world):
        summary = small_world.summary()
        assert summary["queriers"] > 1000
        assert summary["ases"] > 100

    def test_deterministic(self):
        one = World(WorldConfig(seed=7, scale=0.1))
        two = World(WorldConfig(seed=7, scale=0.1))
        assert [q.addr for q in one.queriers] == [q.addr for q in two.queriers]
        assert [q.name for q in one.queriers] == [q.name for q in two.queriers]

    def test_seed_changes_population(self):
        one = World(WorldConfig(seed=7, scale=0.1))
        two = World(WorldConfig(seed=8, scale=0.1))
        assert [q.addr for q in one.queriers] != [q.addr for q in two.queriers]

    def test_querier_addresses_unique(self, small_world):
        addrs = [q.addr for q in small_world.queriers]
        assert len(addrs) == len(set(addrs))

    def test_querier_geography_consistent(self, small_world):
        for querier in small_world.queriers[:500]:
            assert small_world.country_of(querier.addr) == querier.country
            assert small_world.asn_of(querier.addr) == querier.asn

    def test_nameless_fraction_matches_paper(self, small_world):
        # The paper reports 14-19% of queriers without reverse names.
        nameless = sum(1 for q in small_world.queriers if q.name is None)
        fraction = nameless / len(small_world.queriers)
        assert 0.10 < fraction < 0.25

    def test_name_status_matches_name(self, small_world):
        for querier in small_world.queriers:
            if querier.name_status is NameStatus.OK:
                assert querier.name is not None
            else:
                assert querier.name is None

    def test_all_roles_present(self, small_world):
        present = {q.role for q in small_world.queriers}
        assert QuerierRole.HOME in present
        assert QuerierRole.MAIL in present
        assert QuerierRole.NS in present
        assert QuerierRole.CDN in present

    def test_shared_flag_only_on_ns(self, small_world):
        for querier in small_world.queriers:
            if querier.shared:
                assert querier.role is QuerierRole.NS


class TestSampling:
    def test_role_mix_respected(self, small_world, rng):
        sampled = small_world.sample_queriers(
            rng, 400, {QuerierRole.MAIL: 0.7, QuerierRole.NS: 0.3}
        )
        roles = [q.role for q in sampled]
        assert set(roles) <= {QuerierRole.MAIL, QuerierRole.NS}
        mail_fraction = roles.count(QuerierRole.MAIL) / len(roles)
        assert 0.55 < mail_fraction < 0.85

    def test_sampling_without_replacement(self, small_world, rng):
        sampled = small_world.sample_queriers(rng, 300, {QuerierRole.HOME: 1.0})
        addrs = [q.addr for q in sampled]
        assert len(addrs) == len(set(addrs))

    def test_country_weights_concentrate(self, small_world, rng):
        # Keep the draw well below the per-country pool size: once a
        # country's pool is exhausted, sampling correctly spills globally.
        sampled = small_world.sample_queriers(
            rng,
            20,
            {QuerierRole.MAIL: 1.0},
            country_weights={"jp": 0.9, "us": 0.1},
        )
        jp_fraction = sum(1 for q in sampled if q.country == "jp") / len(sampled)
        assert jp_fraction > 0.5

    def test_zero_weight_roles_excluded(self, small_world, rng):
        sampled = small_world.sample_queriers(
            rng, 100, {QuerierRole.MAIL: 1.0, QuerierRole.NTP: 0.0}
        )
        assert all(q.role is QuerierRole.MAIL for q in sampled)


class TestAllocation:
    def test_originator_in_requested_country(self, small_world, rng):
        addr = small_world.allocate_originator(rng, country="de")
        assert small_world.country_of(addr) == "de"

    def test_originator_in_requested_kind(self, small_world, rng):
        addr = small_world.allocate_originator(rng, kind=ASKind.HOSTING)
        asystem = small_world.asns.as_of(addr)
        assert asystem is not None and asystem.kind is ASKind.HOSTING

    def test_unrouted_allocation(self, small_world, rng):
        addr = small_world.allocate_originator(rng, routed=False)
        assert small_world.asn_of(addr) is None
        assert small_world.country_of(addr) is not None

    def test_allocations_never_collide(self, small_world, rng):
        addrs = {small_world.allocate_originator(rng) for _ in range(200)}
        assert len(addrs) == 200
        querier_addrs = {q.addr for q in small_world.queriers}
        assert not (addrs & querier_addrs)

    def test_team_block_allocation(self, small_world, rng):
        block = small_world.allocate_team_block(rng, country="cn")
        assert block.length == 24
        members = [small_world.allocate_in_block(rng, block) for _ in range(10)]
        assert len(set(members)) == 10
        assert all(slash24(m) == slash24(block.network) for m in members)
        assert all(small_world.country_of(m) == "cn" for m in members)

    def test_impossible_constraint_raises(self, small_world, rng):
        with pytest.raises(ValueError):
            small_world.allocate_originator(rng, country="zz")
