"""Tests for the TTL cache, the attenuation workhorse of the simulator."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.dnssim.cache import TtlCache


class TestBasics:
    def test_miss_then_hit(self):
        cache: TtlCache[str, int] = TtlCache()
        assert cache.get("k", 0.0) is None
        cache.put("k", 1, ttl=10.0, now=0.0)
        assert cache.get("k", 5.0) == 1

    def test_expiry_is_strict(self):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=10.0, now=0.0)
        assert cache.get("k", 9.999) == 1
        assert cache.get("k", 10.0) is None

    def test_zero_ttl_never_cached(self):
        # The § IV-D controlled experiment sets PTR TTL to zero so the
        # final authority sees every query; the cache must honor that.
        cache: TtlCache[str, int] = TtlCache(min_ttl=60.0)
        assert cache.put("k", 1, ttl=0.0, now=0.0) is False
        assert cache.get("k", 0.0) is None

    def test_min_ttl_clamps_small_positive(self):
        cache: TtlCache[str, int] = TtlCache(min_ttl=60.0)
        cache.put("k", 1, ttl=1.0, now=0.0)
        assert cache.get("k", 30.0) == 1  # held past the original 1s

    def test_overwrite_extends(self):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=5.0, now=0.0)
        cache.put("k", 2, ttl=5.0, now=4.0)
        assert cache.get("k", 8.0) == 2

    def test_peek_does_not_count(self):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=5.0, now=0.0)
        cache.peek("k", 1.0)
        cache.peek("missing", 1.0)
        assert cache.stats.lookups == 0

    def test_flush_keeps_counters(self):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=5.0, now=0.0)
        cache.get("k", 1.0)
        cache.flush()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_purge_expired(self):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("a", 1, ttl=1.0, now=0.0)
        cache.put("b", 2, ttl=100.0, now=0.0)
        assert cache.purge_expired(now=50.0) == 1
        assert "b" in cache and "a" not in cache


class TestEviction:
    def test_capacity_bound_respected(self):
        cache: TtlCache[int, int] = TtlCache(max_entries=4)
        for i in range(10):
            cache.put(i, i, ttl=100.0, now=float(i))
        assert len(cache) <= 4

    def test_evicts_earliest_expiring(self):
        cache: TtlCache[str, int] = TtlCache(max_entries=2)
        cache.put("short", 1, ttl=5.0, now=0.0)
        cache.put("long", 2, ttl=500.0, now=0.0)
        cache.put("new", 3, ttl=50.0, now=1.0)
        assert "long" in cache and "new" in cache and "short" not in cache

    def test_existing_key_update_does_not_evict(self):
        cache: TtlCache[str, int] = TtlCache(max_entries=2)
        cache.put("a", 1, ttl=10.0, now=0.0)
        cache.put("b", 2, ttl=10.0, now=0.0)
        cache.put("a", 3, ttl=10.0, now=1.0)
        assert "a" in cache and "b" in cache


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["get", "put"]),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            max_size=60,
        )
    )
    def test_hits_plus_misses_equals_lookups(self, ops):
        cache: TtlCache[int, int] = TtlCache()
        now = 0.0
        gets = 0
        for op, key, dt in sorted(ops, key=lambda t: t[2]):
            now = dt
            if op == "get":
                cache.get(key, now)
                gets += 1
            else:
                cache.put(key, key, ttl=10.0, now=now)
        assert cache.stats.lookups == gets
        assert cache.stats.hits + cache.stats.misses == gets

    @given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
    def test_entry_always_readable_immediately(self, ttl):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=ttl, now=0.0)
        assert cache.get("k", 0.0) == 1

    @given(
        st.floats(min_value=0.1, max_value=1000.0),
        st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_never_serves_expired(self, ttl, probe):
        cache: TtlCache[str, int] = TtlCache()
        cache.put("k", 1, ttl=ttl, now=0.0)
        value = cache.get("k", probe)
        if probe >= ttl:
            assert value is None
        else:
            assert value == 1
