"""Tests for the SVG chart primitives and figure renderers."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.svg import Axis, Chart, Scale

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestScale:
    def test_linear_mapping(self):
        scale = Scale(0.0, 10.0, 100.0, 200.0)
        assert scale(0.0) == 100.0
        assert scale(10.0) == 200.0
        assert scale(5.0) == 150.0

    def test_log_mapping(self):
        scale = Scale(1.0, 100.0, 0.0, 100.0, log=True)
        assert scale(1.0) == pytest.approx(0.0)
        assert scale(10.0) == pytest.approx(50.0)
        assert scale(100.0) == pytest.approx(100.0)

    def test_inverted_pixels_allowed(self):
        # y axes map up the screen: pixel_high < pixel_low.
        scale = Scale(0.0, 1.0, 300.0, 100.0)
        assert scale(1.0) == 100.0

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Scale(0.0, 10.0, 0.0, 1.0, log=True)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Scale(5.0, 5.0, 0.0, 1.0)

    def test_linear_ticks_cover_domain(self):
        scale = Scale(0.0, 103.0, 0.0, 1.0)
        ticks = scale.ticks()
        assert ticks[0] >= 0.0 and ticks[-1] <= 103.0
        assert len(ticks) >= 3
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])

    def test_log_ticks_are_decades(self):
        scale = Scale(1.0, 10_000.0, 0.0, 1.0, log=True)
        assert scale.ticks() == [1.0, 10.0, 100.0, 1000.0, 10_000.0]


class TestChart:
    def test_renders_valid_xml(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.line([0, 1, 2], [0, 1, 4], label="series")
        root = parse(chart.render())
        assert root.tag == f"{SVG_NS}svg"

    def test_line_becomes_polyline(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.line([0, 1], [0, 1], label="a")
        chart.line([0, 1], [1, 0], label="b")
        root = parse(chart.render())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_scatter_becomes_circles(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.scatter([1, 2, 3], [1, 2, 3])
        root = parse(chart.render())
        assert len(root.findall(f"{SVG_NS}circle")) == 3

    def test_log_axis_skips_nonpositive_points(self):
        chart = Chart("t", Axis("x", log=True), Axis("y", log=True))
        chart.scatter([0, 1, 10], [5, 0, 50])
        root = parse(chart.render())
        assert len(root.findall(f"{SVG_NS}circle")) == 1

    def test_legend_entries_rendered(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.line([0, 1], [0, 1], label="visible-label")
        text = chart.render()
        assert "visible-label" in text

    def test_title_escaped(self):
        chart = Chart("a < b & c", Axis("x"), Axis("y"))
        chart.line([0, 1], [0, 1])
        root = parse(chart.render())  # would raise on unescaped '<'
        assert "a < b & c" in "".join(root.itertext())

    def test_boxes_render(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.boxes([1, 2], [(1, 2, 3, 4, 5), (2, 3, 4, 5, 6)])
        root = parse(chart.render())
        assert len(root.findall(f"{SVG_NS}rect")) >= 3  # background + 2 boxes

    def test_stacked_bars_render(self):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.stacked_bars([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        root = parse(chart.render())
        assert len(root.findall(f"{SVG_NS}rect")) >= 7

    def test_save_writes_file(self, tmp_path):
        chart = Chart("t", Axis("x"), Axis("y"))
        chart.line([0, 1], [0, 1])
        out = chart.save(tmp_path / "nested" / "chart.svg")
        assert out.exists()
        parse(out.read_text())


class TestFigureRenderers:
    def test_fig4_renderer(self, tmp_path):
        from repro.analysis.controlled import ControlledTrial
        from repro.experiments.fig4_controlled import Fig4Result
        from repro.viz.figures import render_fig4

        trials = [
            ControlledTrial(1e-5, 30_000, 100, 100, 0, 1),
            ControlledTrial(1e-3, 3_000_000, 2000, 2000, 2, 8),
        ]
        result = Fig4Result(
            trials=trials, power=0.7, coefficient=0.1, detection_fraction=1e-5
        )
        out = render_fig4(result, tmp_path / "fig4.svg")
        parse(out.read_text())

    def test_fig15_renderer(self, tmp_path):
        from repro.analysis.trends import ChurnPoint
        from repro.experiments.fig15_churn import Fig15Result
        from repro.viz.figures import render_fig15

        result = Fig15Result(
            points=[
                ChurnPoint(day=3.5, new=5, continuing=10, departing=2),
                ChurnPoint(day=10.5, new=3, continuing=11, departing=4),
            ]
        )
        out = render_fig15(result, tmp_path / "fig15.svg")
        parse(out.read_text())

    def test_fig8_renderer(self, tmp_path):
        from repro.analysis.consistency import ConsistencyRecord
        from repro.experiments.fig8_consistency import Fig8Result
        from repro.viz.figures import render_fig8

        records = [
            ConsistencyRecord(originator=i, appearances=5, preferred_class="scan",
                              r=0.5 + 0.1 * (i % 5), min_footprint=25)
            for i in range(10)
        ]
        result = Fig8Result(by_threshold={20: records, 50: records[:4]})
        out = render_fig8(result, tmp_path / "fig8.svg")
        parse(out.read_text())
