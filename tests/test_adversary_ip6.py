"""Tests for the § III-F/§ VII countermeasure models and ip6.arpa names."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.adversary import qmin_experiment, spreading_experiment
from repro.dnssim.resolver import RecursiveResolver, ResolverConfig
from repro.netmodel.addressing import (
    MAX_IPV6,
    ip6_to_reverse_name,
    reverse_name_to_ip6,
)


class TestIp6ReverseNames:
    def test_known_value(self):
        name = ip6_to_reverse_name(0x20010DB8_00000000_00000000_00000001)
        assert name.endswith(".8.b.d.0.1.0.0.2.ip6.arpa")
        assert name.startswith("1.0.0.0.")
        assert name.count(".") == 33  # 32 nibbles + ip6 + arpa

    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_roundtrip(self, addr):
        assert reverse_name_to_ip6(ip6_to_reverse_name(addr)) == addr

    def test_case_and_dot_tolerant(self):
        name = ip6_to_reverse_name(1).upper() + "."
        assert reverse_name_to_ip6(name) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "example.com",
            "4.3.2.1.in-addr.arpa",
            "1.2.ip6.arpa",               # too short
            "x" + ".0" * 31 + ".ip6.arpa",  # bad nibble
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            reverse_name_to_ip6(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip6_to_reverse_name(MAX_IPV6 + 1)
        with pytest.raises(ValueError):
            ip6_to_reverse_name(-1)


class TestQnameMinimizationFlag:
    def test_fraction_zero_never_minimizes(self):
        config = ResolverConfig(qname_minimization_fraction=0.0)
        resolvers = [
            RecursiveResolver(addr=i, shared=False, region="na",
                              preferred_root="b", config=config)
            for i in range(50)
        ]
        assert not any(r.minimizes for r in resolvers)

    def test_fraction_one_always_minimizes(self):
        config = ResolverConfig(qname_minimization_fraction=1.0)
        resolver = RecursiveResolver(
            addr=1, shared=False, region="na", preferred_root="b", config=config
        )
        assert resolver.minimizes

    def test_fraction_half_mixes(self):
        config = ResolverConfig(qname_minimization_fraction=0.5)
        flags = [
            RecursiveResolver(addr=i, shared=False, region="na",
                              preferred_root="b", config=config).minimizes
            for i in range(100)
        ]
        assert 20 < sum(flags) < 80


class TestAdversaryExperiments:
    def test_spreading_trends(self, small_world):
        trials = spreading_experiment(
            small_world, splits=(1, 8), total_audience=400,
            duration_days=1.0, threshold=20, seed=3,
        )
        concentrated, spread = trials
        assert concentrated.n_originators == 1
        assert concentrated.detected == 1
        assert spread.largest_footprint < concentrated.largest_footprint

    def test_qmin_signal_erosion(self, small_world):
        trials = qmin_experiment(
            small_world, fractions=(0.0, 0.9), n_campaigns=3,
            duration_days=1.0, seed=3,
        )
        clean, deployed = trials
        assert clean.minimized_queries == 0
        assert deployed.minimized_queries > 0
        assert deployed.signal_fraction < clean.signal_fraction


class TestQminAccounting:
    def test_minimized_plus_attributable_cover_all_queries(self, small_world, rng):
        """At a national sensor, every delegation query from a covered
        originator is either attributable (logged) or minimized (counted):
        the sensor never silently loses queries."""
        from repro.activity import SimulationEngine, build_campaign
        from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy, ResolverConfig

        config = ResolverConfig(
            national_warm_shared=0.0,
            national_warm_self=0.0,
            qname_minimization_fraction=0.5,
        )
        hierarchy = DnsHierarchy(small_world, seed=21, resolver_config=config)
        sensor = hierarchy.attach_national(
            Authority(
                name="jp", level=AuthorityLevel.NATIONAL, country="jp",
                scope_slash8=frozenset(small_world.geo.blocks_of("jp")),
            )
        )
        engine = SimulationEngine(small_world, hierarchy)
        campaign = build_campaign(
            small_world, "spam", rng, start=0.0, duration_days=1.0,
            home_country="jp", audience_size=200,
        )
        engine.add(campaign)
        engine.run(0.0, 86400.0)
        total_national = hierarchy.stats.national_queries
        assert total_national > 0
        assert sensor.seen_reverse + sensor.seen_minimized == total_national
        assert sensor.seen_minimized > 0
        assert sensor.seen_reverse > 0
