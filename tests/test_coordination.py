"""Tests for team co-activity scoring on synthetic window classifications."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.coordination import (
    TeamCoactivity,
    coactivity_baseline,
    team_coactivity,
)
from repro.analysis.longitudinal import AnalysisWindow, WindowedAnalysis
from repro.sensor.collection import ObservationWindow
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FEATURE_NAMES, FeatureSet

TEAM_BLOCK = 0x0A0A0A


def window_with_classes(index: int, classes: dict[int, str]) -> AnalysisWindow:
    return AnalysisWindow(
        index=index,
        start_day=float(index * 7),
        end_day=float((index + 1) * 7),
        observations=ObservationWindow(start=0.0, end=1.0),
        features=FeatureSet(
            originators=np.array(sorted(classes), dtype=np.int64),
            matrix=np.zeros((len(classes), len(FEATURE_NAMES))),
            context=WindowContext(0, 1, 1, 1, 1),
            footprints=np.full(len(classes), 30, dtype=np.int64),
        ),
        classification=dict(classes),
    )


def build_analysis(synchronized: bool) -> WindowedAnalysis:
    """A 10-window world: one 4-member team + 8 lone scanners.

    With ``synchronized``, team members are active in the same 5 windows;
    otherwise each member picks its own disjoint-ish slice.
    """
    team = [(TEAM_BLOCK << 8) | i for i in range(1, 5)]
    loners = [(0x140000 + i) << 8 | 1 for i in range(8)]
    rng = np.random.default_rng(3)
    windows = []
    for w in range(10):
        classes: dict[int, str] = {}
        for k, member in enumerate(team):
            if synchronized:
                active = w < 5
            else:
                active = (w + 2 * k) % 8 < 2
            if active:
                classes[member] = "scan"
        for k, loner in enumerate(loners):
            if rng.random() < 0.4:
                classes[loner] = "scan"
        windows.append(window_with_classes(w, classes))
    return WindowedAnalysis(dataset=None, window_days=7.0, windows=windows)


class TestCoactivity:
    def test_synchronized_team_scores_high(self):
        analysis = build_analysis(synchronized=True)
        teams = team_coactivity(analysis)
        assert len(teams) == 1
        team = teams[0]
        assert team.block == TEAM_BLOCK
        assert team.members == 4
        assert team.coactivity == pytest.approx(1.0)
        assert team.lift > 1.5

    def test_unsynchronized_members_score_low(self):
        analysis = build_analysis(synchronized=False)
        teams = team_coactivity(analysis)
        assert teams[0].coactivity < 0.35

    def test_baseline_between_zero_and_one(self):
        analysis = build_analysis(synchronized=True)
        baseline = coactivity_baseline(analysis)
        assert 0.0 <= baseline <= 1.0

    def test_no_teams_when_below_size(self):
        analysis = build_analysis(synchronized=True)
        assert team_coactivity(analysis, team_size=10) == []

    def test_lift_edge_cases(self):
        infinite = TeamCoactivity(block=1, members=4, coactivity=0.5, baseline=0.0)
        assert math.isinf(infinite.lift)
        undefined = TeamCoactivity(block=1, members=4, coactivity=0.0, baseline=0.0)
        assert math.isnan(undefined.lift)

    def test_empty_analysis(self):
        analysis = WindowedAnalysis(dataset=None, window_days=7.0, windows=[])
        assert team_coactivity(analysis) == []
        assert math.isnan(coactivity_baseline(analysis))
