"""Property-based tests (hypothesis) of the repro.sketch structures.

The structures' contracts are probabilistic but one-sided, so every
test pins a *hard* invariant — never a distributional hope:

* Bloom filters have no false negatives, and their false-positive rate
  stays within a slack factor of the configured budget;
* count-min never undercounts;
* HLL estimates stay within the theoretical relative error
  (``1.04/sqrt(m)``, generously slackened for small cardinalities);
* merge is associative/commutative and equals sketching the union;
* batch ingest is bit-identical to the scalar path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    BloomFilter,
    CountMinSketch,
    HllBank,
    HyperLogLog,
    mix64,
    mix64_array,
)

keys = st.lists(
    st.integers(min_value=0, max_value=2**40), min_size=0, max_size=300
)
seeds = st.integers(min_value=0, max_value=2**32)


def key_array(values: list[int]) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


class TestHashing:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1), seeds)
    def test_scalar_matches_vector(self, value, seed):
        scalar = mix64(value, seed)
        vector = mix64_array(np.array([value], dtype=np.int64), seed)
        assert int(vector[0]) == scalar

    @given(seeds)
    def test_distinct_inputs_rarely_collide(self, seed):
        values = np.arange(512, dtype=np.int64)
        hashed = mix64_array(values, seed)
        assert len(np.unique(hashed)) == values.size


class TestBloomProperties:
    @given(keys, seeds)
    def test_no_false_negatives(self, values, seed):
        bloom = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        for value in values:
            bloom.add(value)
        assert all(value in bloom for value in values)
        if values:
            assert bool(bloom.contains_batch(key_array(values)).all())

    @given(keys, seeds)
    def test_batch_matches_scalar(self, values, seed):
        scalar = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        batch = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        novel_scalar: dict[int, bool] = {}
        for value in values:
            novel = scalar.add(value)
            novel_scalar.setdefault(value, novel)
        # The batch novel-mask contract covers distinct keys; feed first
        # occurrences (the documented caller obligation).
        firsts = list(dict.fromkeys(values))
        novel_batch = batch.add_batch(key_array(firsts))
        assert scalar == batch
        assert list(novel_batch) == [novel_scalar[value] for value in firsts]

    @given(seeds)
    @settings(max_examples=20)
    def test_false_positive_rate_within_budget(self, seed):
        fp_rate = 0.02
        bloom = BloomFilter(capacity=2048, fp_rate=fp_rate, seed=seed)
        inserted = np.arange(2048, dtype=np.int64)
        bloom.add_batch(inserted)
        probes = np.arange(1_000_000, 1_050_000, dtype=np.int64)
        hits = int(bloom.contains_batch(probes).sum())
        # 3x slack over the design budget on 50k disjoint probes.
        assert hits / probes.size <= 3.0 * fp_rate

    @given(keys, keys, seeds)
    def test_merge_equals_union(self, a_values, b_values, seed):
        a = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        b = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        both = BloomFilter(capacity=4096, fp_rate=0.01, seed=seed)
        a.add_batch(key_array(sorted(set(a_values))))
        b.add_batch(key_array(sorted(set(b_values))))
        both.add_batch(key_array(sorted(set(a_values) | set(b_values))))
        assert (a | b) == both
        assert (a | b) == (b | a)

    def test_incompatible_merge_raises(self):
        with pytest.raises(ValueError):
            BloomFilter(seed=1).merge(BloomFilter(seed=2))
        with pytest.raises(TypeError):
            BloomFilter().merge(object())  # type: ignore[arg-type]


class TestCountMinProperties:
    @given(keys, seeds)
    def test_never_undercounts(self, values, seed):
        cms = CountMinSketch(width=64, depth=3, seed=seed)
        for value in values:
            cms.add(value)
        truth: dict[int, int] = {}
        for value in values:
            truth[value] = truth.get(value, 0) + 1
        for value, count in truth.items():
            assert cms.estimate(value) >= count
        if truth:
            probe = key_array(sorted(truth))
            assert bool(
                (cms.estimate_batch(probe) >= [truth[int(v)] for v in probe]).all()
            )

    @given(keys, seeds)
    def test_batch_matches_scalar(self, values, seed):
        scalar = CountMinSketch(width=128, depth=4, seed=seed)
        batch = CountMinSketch(width=128, depth=4, seed=seed)
        for value in values:
            scalar.add(value)
        batch.add_batch(key_array(values))
        assert scalar == batch

    @given(keys, keys, seeds)
    def test_merge_equals_union_and_commutes(self, a_values, b_values, seed):
        def sketch_of(stream):
            cms = CountMinSketch(width=128, depth=4, seed=seed)
            cms.add_batch(key_array(stream))
            return cms

        a, b = sketch_of(a_values), sketch_of(b_values)
        assert (a | b) == sketch_of(a_values + b_values)
        assert (a | b) == (b | a)

    @given(keys, keys, keys, seeds)
    @settings(max_examples=25)
    def test_merge_associative(self, a_values, b_values, c_values, seed):
        def sketch_of(stream):
            cms = CountMinSketch(width=64, depth=3, seed=seed)
            cms.add_batch(key_array(stream))
            return cms

        a, b, c = sketch_of(a_values), sketch_of(b_values), sketch_of(c_values)
        assert ((a | b) | c) == (a | (b | c))

    @given(keys, seeds)
    def test_total_is_exact(self, values, seed):
        cms = CountMinSketch(width=32, depth=2, seed=seed)
        cms.add_batch(key_array(values))
        assert cms.total == len(values)


class TestHyperLogLogProperties:
    @given(st.integers(min_value=0, max_value=5000), seeds)
    @settings(max_examples=30)
    def test_estimate_within_theoretical_bound(self, cardinality, seed):
        precision = 10  # m=1024 → RSE ~3.25%
        hll = HyperLogLog(precision=precision, seed=seed)
        hll.add_batch(np.arange(cardinality, dtype=np.int64))
        error = abs(hll.cardinality() - cardinality)
        # 5 standard errors of slack, plus an absolute floor for the
        # tiny-cardinality regime where relative error is meaningless.
        rse = 1.04 / math.sqrt(1 << precision)
        assert error <= max(5.0, 5.0 * rse * cardinality)

    @given(keys, seeds)
    def test_batch_matches_scalar(self, values, seed):
        scalar = HyperLogLog(precision=8, seed=seed)
        batch = HyperLogLog(precision=8, seed=seed)
        for value in values:
            scalar.add(value)
        batch.add_batch(key_array(values))
        assert scalar == batch

    @given(keys, seeds)
    def test_duplicates_never_change_estimate(self, values, seed):
        hll = HyperLogLog(precision=6, seed=seed)
        hll.add_batch(key_array(values))
        once = hll.cardinality()
        hll.add_batch(key_array(values))
        assert hll.cardinality() == once

    @given(keys, keys, seeds)
    def test_merge_equals_union_and_commutes(self, a_values, b_values, seed):
        def hll_of(stream):
            hll = HyperLogLog(precision=7, seed=seed)
            hll.add_batch(key_array(stream))
            return hll

        a, b = hll_of(a_values), hll_of(b_values)
        assert (a | b) == hll_of(a_values + b_values)
        assert (a | b) == (b | a)

    @given(keys, keys, keys, seeds)
    @settings(max_examples=25)
    def test_merge_associative(self, a_values, b_values, c_values, seed):
        def hll_of(stream):
            hll = HyperLogLog(precision=6, seed=seed)
            hll.add_batch(key_array(stream))
            return hll

        a, b, c = hll_of(a_values), hll_of(b_values), hll_of(c_values)
        assert ((a | b) | c) == (a | (b | c))

    def test_incompatible_merge_raises(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=6).merge(HyperLogLog(precision=8))


class TestHllBankProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=2**32),
            ),
            max_size=300,
        ),
        seeds,
    )
    def test_bank_row_equals_standalone_hll(self, pairs, seed):
        bank = HllBank(precision=6, seed=seed)
        singles: dict[int, HyperLogLog] = {}
        for key, item in pairs:
            bank.add(key, item)
            singles.setdefault(key, HyperLogLog(precision=6, seed=seed)).add(item)
        for key, single in singles.items():
            assert bank.extract(key) == single
            assert bank.estimate(key) == single.cardinality()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=2**32),
            ),
            max_size=300,
        ),
        seeds,
    )
    def test_batch_matches_scalar_including_key_order(self, pairs, seed):
        scalar = HllBank(precision=6, seed=seed)
        batch = HllBank(precision=6, seed=seed)
        for key, item in pairs:
            scalar.add(key, item)
        if pairs:
            batch.add_batch(
                np.array([k for k, _ in pairs], dtype=np.int64),
                np.array([i for _, i in pairs], dtype=np.int64),
            )
        scalar_keys, scalar_estimates = scalar.estimate_all()
        batch_keys, batch_estimates = batch.estimate_all()
        # Insertion (first-occurrence) order must match too — survivor
        # order in the pre-stage depends on it.
        assert np.array_equal(scalar_keys, batch_keys)
        assert np.array_equal(scalar_estimates, batch_estimates)

    @given(keys, keys, seeds)
    def test_merge_equals_union(self, a_items, b_items, seed):
        def bank_of(*streams):
            bank = HllBank(precision=6, seed=seed)
            for key, stream in enumerate(streams):
                for item in stream:
                    bank.add(key, item)
            return bank

        a = bank_of(a_items)
        b = HllBank(precision=6, seed=seed)
        for item in b_items:
            b.add(1, item)
        merged = a.merge(b)
        both = HllBank(precision=6, seed=seed)
        for item in a_items:
            both.add(0, item)
        for item in b_items:
            both.add(1, item)
        assert merged.estimate(0) == both.estimate(0)
        assert merged.estimate(1) == both.estimate(1)

    def test_bank_grows_past_initial_capacity(self):
        bank = HllBank(precision=4, seed=0)
        for key in range(1000):
            bank.add(key, key * 17)
        assert len(bank) == 1000
        keys_out, estimates = bank.estimate_all()
        assert keys_out.size == 1000
        assert bool((estimates > 0).all())
