"""Tests for the staged SensorEngine.

Covers: SensorConfig validation, per-stage StageStats accounting, the
batch/streaming equivalence property the engine level now guarantees —
including dedup bursts that straddle a window boundary and input
reordered within ``reorder_slack`` — and the batch adapters (gap
filling, final-window clipping, classify-stage reuse).
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.netmodel.world import NameStatus
from repro.sensor.collection import collect_window
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import (
    STAGE_NAMES,
    SensorConfig,
    SensorEngine,
    StageStats,
)
from repro.sensor.streaming import StreamingCollector


def entry(ts: float, querier: int = 1, originator: int = 2) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


def named_directory(queriers: range) -> StaticDirectory:
    return StaticDirectory(
        {
            q: QuerierInfo(
                addr=q,
                name=f"host{q}.example.net",
                status=NameStatus.OK,
                asn=1,
                country="jp",
            )
            for q in queriers
        }
    )


class TestSensorConfig:
    def test_defaults_are_the_papers(self):
        config = SensorConfig()
        assert config.window_days == 7.0
        assert config.dedup_window == 30.0
        assert config.min_queriers == 20
        assert config.majority_runs == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_seconds": 0.0},
            {"window_seconds": -1.0},
            {"dedup_window": -0.1},
            {"reorder_slack": -1.0},
            {"min_queriers": 0},
            {"majority_runs": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SensorConfig(**kwargs)

    def test_frozen(self):
        config = SensorConfig()
        with pytest.raises(AttributeError):
            config.window_seconds = 10.0

    def test_replaced_revalidates(self):
        config = SensorConfig().replaced(window_seconds=3600.0)
        assert config.window_seconds == 3600.0
        with pytest.raises(ValueError):
            config.replaced(min_queriers=-3)


class TestStageStats:
    def test_all_stages_reported(self):
        engine = SensorEngine()
        names = [s.name for s in engine.accounting()]
        assert names == list(STAGE_NAMES)
        assert all(isinstance(s, StageStats) for s in engine.accounting())

    def test_window_stage_counts(self):
        engine = SensorEngine(config=SensorConfig(window_seconds=100.0))
        entries = [
            entry(5.0),          # kept
            entry(10.0),         # dedup-dropped (same pair within 30 s)
            entry(50.0),         # kept
            entry(250.0),        # out of [0, 200) range
        ]
        engine.windows(entries, 0.0, 200.0)
        stats = {s.name: s for s in engine.accounting()}
        assert stats["ingest"].items_in == 4
        assert stats["ingest"].dropped == 1
        assert stats["ingest"].items_out == 3
        assert stats["window"].items_in == 3
        assert stats["window"].dropped == 1
        assert stats["window"].items_out == 2  # [0,100) + empty [100,200)

    def test_select_featurize_classify_counts(self):
        directory = named_directory(range(100, 140))
        engine = SensorEngine(
            directory, SensorConfig(window_seconds=100.0, min_queriers=10)
        )
        entries = sorted(
            # originator 1: 30 queriers (analyzable); originator 2: 3.
            [entry(float(q % 97), querier=q, originator=1) for q in range(100, 130)]
            + [entry(float(q - 60), querier=q, originator=2) for q in range(100, 103)],
            key=lambda e: e.timestamp,
        )
        features = engine.featurize(engine.collect(entries, 0.0, 100.0))
        stats = {s.name: s for s in engine.accounting()}
        assert stats["select"].items_in == 2
        assert stats["select"].items_out == 1
        assert stats["select"].dropped == 1
        assert stats["featurize"].items_in == 1
        assert stats["featurize"].items_out == 1
        assert len(features) == 1
        assert stats["select"].seconds >= 0.0

    def test_streaming_stats_absorbed(self):
        engine = SensorEngine(
            config=SensorConfig(window_seconds=100.0, reorder_slack=0.0)
        )
        engine.ingest_many([entry(10.0), entry(12.0), entry(150.0), entry(20.0)])
        engine.finish()
        stats = {s.name: s for s in engine.accounting()}
        assert stats["ingest"].items_in == 4
        assert stats["ingest"].dropped == 1  # 20.0 is behind the watermark
        assert stats["window"].dropped == 1  # 12.0 dedups against 10.0
        assert stats["window"].items_out == 2

    def test_stage_seconds_sum_tracks_wall_time(self):
        """Each wall second of a run is attributed to exactly one stage:
        the per-stage seconds must neither exceed the run's wall time
        (double counting) nor leave most of it unattributed."""
        directory = named_directory(range(100, 300))
        engine = SensorEngine(
            directory, SensorConfig(window_seconds=100.0, min_queriers=3)
        )
        rng = np.random.default_rng(3)
        entries = sorted(
            (
                entry(
                    float(rng.uniform(0.0, 500.0)),
                    querier=int(rng.integers(100, 300)),
                    originator=int(rng.integers(1, 25)),
                )
                for _ in range(4000)
            ),
            key=lambda e: e.timestamp,
        )
        started = time.perf_counter()
        sensed = engine.process(entries, 0.0, 500.0, classify=False)
        wall = time.perf_counter() - started
        assert len(sensed) == 5
        total = sum(stage.seconds for stage in engine.accounting())
        assert total <= wall * 1.01
        assert total >= wall * 0.4

    def test_accounting_report_renders(self):
        engine = SensorEngine(config=SensorConfig(window_seconds=100.0))
        engine.windows([entry(5.0)], 0.0, 100.0)
        report = engine.format_accounting()
        assert "stage" in report and "ingest" in report and "classify" in report


class TestBatchStreamingEquivalence:
    """The unified-path guarantee: StreamingCollector windows are exactly
    what collect_window produces for the same boundaries."""

    @staticmethod
    def assert_windows_match(streamed, entries):
        for window in streamed:
            if not len(window):
                continue
            batch = collect_window(entries, window.start, window.end)
            assert set(window.observations) == set(batch.observations)
            for originator, observation in window.observations.items():
                expected = batch.observations[originator]
                assert observation.timestamps == expected.timestamps
                assert observation.queriers == expected.queriers
                assert observation.unique_queriers == expected.unique_queriers

    def test_dedup_burst_straddling_boundary(self):
        # Same (querier, originator) pair fires just before and just
        # after the 100 s boundary: dedup scope is the window, so both
        # sides keep their first query.
        entries = [entry(95.0), entry(98.0), entry(101.0), entry(104.0)]
        collector = StreamingCollector(window_seconds=100.0, reorder_slack=0.0)
        collector.ingest_many(entries)
        streamed = collector.flush()
        assert [len(w) for w in streamed] == [1, 1]
        first, second = streamed
        assert first.observations[2].timestamps == [95.0]
        assert second.observations[2].timestamps == [101.0]
        self.assert_windows_match(streamed, entries)

    def test_reordered_input_within_slack(self):
        # Disorder bounded by the slack: the reorder buffer re-sorts, so
        # the result is identical to the sorted batch pass.
        shuffled = [
            entry(10.0, querier=1),
            entry(8.0, querier=2),
            entry(12.0, querier=3),
            entry(9.0, querier=1),   # dedups against 8? no — pair (1,2): 10 then 9
            entry(110.0, querier=1),
            entry(108.0, querier=2),
        ]
        collector = StreamingCollector(window_seconds=100.0, reorder_slack=5.0)
        collector.ingest_many(shuffled)
        streamed = collector.flush()
        ordered = sorted(shuffled, key=lambda e: e.timestamp)
        self.assert_windows_match(streamed, ordered)
        # The pair (querier=1, originator=2) at t=9 must dedup against
        # t=10 only after reordering puts 9 first: kept 9, dropped 10.
        assert streamed[0].observations[2].timestamps == [8.0, 9.0, 12.0]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=950, allow_nan=False),
                st.integers(1, 4),
                st.integers(1, 3),
            ),
            max_size=80,
        ),
        st.sampled_from([0.0, 5.0, 30.0]),
    )
    def test_property_streaming_equals_batch_per_window(self, raw, slack):
        """Sorted input, any slack: streamed windows == per-boundary batch.

        Timestamps cluster in [0, 950) against 250 s windows and a 30 s
        dedup horizon, so bursts regularly straddle boundaries.
        """
        entries = [entry(t, q, o) for t, q, o in sorted(raw, key=lambda r: r[0])]
        collector = StreamingCollector(window_seconds=250.0, reorder_slack=slack)
        collector.ingest_many(entries)
        streamed = collector.flush()
        self.assert_windows_match(streamed, entries)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=900, allow_nan=False),
                st.floats(min_value=0, max_value=10.0),  # bounded disorder
                st.integers(1, 4),
                st.integers(1, 3),
            ),
            max_size=80,
        )
    )
    def test_property_reordering_within_slack_is_invisible(self, raw):
        """Arrival order perturbed within the slack: same windows as the
        time-sorted batch pass (the reorder buffer's guarantee)."""
        # Slack strictly above the max jitter: float rounding in the
        # arrival-order sort key must not push disorder past the slack.
        slack = 11.0
        base = [(t, q, o) for t, _, q, o in raw]
        # Arrival order: sort by (true time + bounded jitter).
        arrival = [
            entry(t, q, o)
            for (t, q, o), (_, jitter, _, _) in sorted(
                zip(base, raw), key=lambda pair: pair[0][0] + pair[1][1]
            )
        ]
        collector = StreamingCollector(window_seconds=250.0, reorder_slack=slack)
        collector.ingest_many(arrival)
        assert collector.stats.late_dropped == 0
        streamed = collector.flush()
        ordered = sorted(arrival, key=lambda e: e.timestamp)
        self.assert_windows_match(streamed, ordered)


class TestBatchAdapters:
    def test_gap_filling_and_clipping(self):
        engine = SensorEngine(config=SensorConfig(window_seconds=100.0))
        windows = engine.windows([entry(10.0), entry(310.0)], 0.0, 350.0)
        assert [(w.start, w.end) for w in windows] == [
            (0.0, 100.0),
            (100.0, 200.0),
            (200.0, 300.0),
            (300.0, 350.0),
        ]
        assert [len(w) for w in windows] == [1, 0, 0, 1]

    def test_collect_spans_the_range(self):
        engine = SensorEngine()
        window = engine.collect([entry(10.0), entry(500.0)], 0.0, 1000.0)
        assert window.start == 0.0 and window.end == 1000.0
        assert window.observations[2].query_count == 2

    def test_out_of_order_batch_raises(self):
        engine = SensorEngine(config=SensorConfig(window_seconds=100.0))
        with pytest.raises(ValueError):
            engine.windows([entry(50.0), entry(10.0)], 0.0, 100.0)

    def test_bad_range_raises(self):
        engine = SensorEngine()
        with pytest.raises(ValueError):
            engine.windows([], 10.0, 10.0)

    def test_featurize_without_directory_raises(self):
        engine = SensorEngine()
        with pytest.raises(RuntimeError):
            engine.featurize(engine.collect([entry(1.0)], 0.0, 10.0))

    def test_classify_unfitted_raises(self):
        directory = named_directory(range(1, 5))
        engine = SensorEngine(directory, SensorConfig(min_queriers=1))
        features = engine.featurize(engine.collect([entry(1.0)], 0.0, 10.0))
        with pytest.raises(RuntimeError):
            engine.classify(features)

    def test_fit_from_shares_training(self):
        directory = named_directory(range(100, 140))
        entries = sorted(
            [entry(float(q % 89), querier=q, originator=o) for o in (1, 2)
             for q in range(100, 130)],
            key=lambda e: e.timestamp,
        )
        trainer = SensorEngine(
            directory, SensorConfig(window_seconds=100.0, min_queriers=5,
                                    majority_runs=1)
        )
        features = trainer.featurize(trainer.collect(entries, 0.0, 100.0))
        from repro.sensor.curation import LabeledSet

        trainer.fit(features, LabeledSet.from_pairs([(1, "scan"), (2, "spam")]))
        streamer = SensorEngine(directory, trainer.config)
        streamer.fit_from(trainer)
        assert streamer.is_fitted
        verdicts = streamer.classify(features)
        assert {v.originator for v in verdicts} == {1, 2}

    def test_fit_from_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SensorEngine().fit_from(SensorEngine())


class TestStreamingEngine:
    def test_poll_and_finish_sense_windows(self):
        directory = named_directory(range(100, 160))
        engine = SensorEngine(
            directory,
            SensorConfig(window_seconds=100.0, min_queriers=5, reorder_slack=0.0),
        )
        entries = sorted(
            [entry(float(q % 83), querier=q, originator=1) for q in range(100, 130)]
            + [entry(100.0 + float(q % 83), querier=q, originator=1)
               for q in range(100, 130)],
            key=lambda e: e.timestamp,
        )
        engine.ingest_many(entries)
        sensed = engine.poll() + engine.finish()
        assert len(sensed) == 2
        assert all(s.features is not None for s in sensed)
        assert all(len(s.features) == 1 for s in sensed)
        assert all(s.verdicts == [] for s in sensed)  # unfitted: no classify


class TestFeatureSetRowIndex:
    def test_row_of_uses_index(self):
        directory = named_directory(range(100, 140))
        engine = SensorEngine(
            directory, SensorConfig(window_seconds=100.0, min_queriers=2)
        )
        entries = sorted(
            [entry(float(q % 89), querier=q, originator=o) for o in (1, 2, 3)
             for q in range(100, 110)],
            key=lambda e: e.timestamp,
        )
        features = engine.featurize(engine.collect(entries, 0.0, 100.0))
        assert set(features.row_index) == {1, 2, 3}
        row = features.row_of(2)
        assert row is not None
        np.testing.assert_array_equal(row, features.matrix[features.row_index[2]])
        assert features.row_of(99) is None

    def test_subset_via_index(self):
        directory = named_directory(range(100, 140))
        engine = SensorEngine(
            directory, SensorConfig(window_seconds=100.0, min_queriers=2)
        )
        entries = sorted(
            [entry(float(q % 89), querier=q, originator=o) for o in (1, 2, 3)
             for q in range(100, 110)],
            key=lambda e: e.timestamp,
        )
        features = engine.featurize(engine.collect(entries, 0.0, 100.0))
        subset = features.subset({1, 3, 42})
        assert sorted(int(o) for o in subset.originators) == [1, 3]
        for originator in (1, 3):
            np.testing.assert_array_equal(
                subset.row_of(originator), features.row_of(originator)
            )
