"""Property tests on campaign event streams and windowing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import SECONDS_PER_DAY, build_campaign
from repro.activity.classes import APPLICATION_CLASSES


@pytest.fixture(scope="module")
def campaign(small_world):
    return build_campaign(
        small_world, "spam", np.random.default_rng(42), start=0.0, duration_days=2.0,
        audience_size=150,
    )


class TestEventWindowing:
    def test_full_window_equals_total(self, campaign):
        events = campaign.events_in(0.0, campaign.end + 1)
        assert len(events) == campaign.total_attempts

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=2 * SECONDS_PER_DAY),
                    min_size=1, max_size=6))
    def test_arbitrary_partitions_cover_exactly(self, campaign, cuts):
        bounds = sorted({0.0, 2 * SECONDS_PER_DAY + 1.0, *cuts})
        total = 0
        for lo, hi in zip(bounds, bounds[1:]):
            total += len(campaign.events_in(lo, hi))
        assert total == campaign.total_attempts

    def test_windows_are_half_open(self, campaign):
        events = campaign.events_in(0.0, campaign.end + 1)
        some_time = events[len(events) // 2][0]
        left = campaign.events_in(0.0, some_time)
        right = campaign.events_in(some_time, campaign.end + 1)
        assert len(left) + len(right) == campaign.total_attempts

    def test_event_queriers_come_from_audience(self, campaign):
        audience_addrs = {q.addr for q in campaign.audience}
        for _, querier in campaign.events_in(0.0, campaign.end + 1):
            assert querier.addr in audience_addrs


class TestCampaignInvariantsAcrossClasses:
    @pytest.mark.parametrize("app_class", APPLICATION_CLASSES)
    def test_every_audience_member_queries_at_least_once(
        self, small_world, app_class
    ):
        campaign = build_campaign(
            small_world, app_class, np.random.default_rng(7),
            start=0.0, duration_days=1.0, audience_size=60,
        )
        queried = {q.addr for _, q in campaign.events_in(0.0, campaign.end + 1)}
        audience = {q.addr for q in campaign.audience}
        # Diurnal thinning keeps at least one attempt per querier by
        # construction; dedup never removes the first attempt.
        assert queried == audience

    @pytest.mark.parametrize("app_class", ["spam", "cdn", "mail", "scan"])
    def test_event_times_within_campaign(self, small_world, app_class):
        campaign = build_campaign(
            small_world, app_class, np.random.default_rng(8),
            start=5000.0, duration_days=1.5,
        )
        for when, _ in campaign.events_in(0.0, float("inf")):
            assert campaign.start <= when < campaign.end
