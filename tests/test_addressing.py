"""Unit and property tests for IPv4 address math and reverse names."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netmodel.addressing import (
    MAX_IPV4,
    Prefix,
    from_octets,
    ip_to_reverse_name,
    ip_to_str,
    is_reverse_name,
    octets,
    prefix_of,
    reverse_name_to_ip,
    slash8,
    slash16,
    slash24,
    str_to_ip,
)

addresses = st.integers(min_value=0, max_value=MAX_IPV4)


class TestDottedQuad:
    def test_known_values(self):
        assert ip_to_str(0x01020304) == "1.2.3.4"
        assert ip_to_str(0) == "0.0.0.0"
        assert ip_to_str(MAX_IPV4) == "255.255.255.255"

    def test_parse_known(self):
        assert str_to_ip("1.2.3.4") == 0x01020304
        assert str_to_ip("255.255.255.255") == MAX_IPV4

    @given(addresses)
    def test_roundtrip(self, addr):
        assert str_to_ip(ip_to_str(addr)) == addr

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "1..2.3", "-1.2.3.4"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            str_to_ip(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_to_str(MAX_IPV4 + 1)
        with pytest.raises(ValueError):
            ip_to_str(-1)


class TestOctets:
    @given(addresses)
    def test_roundtrip(self, addr):
        assert from_octets(*octets(addr)) == addr

    def test_order_is_msb_first(self):
        assert octets(0x01020304) == (1, 2, 3, 4)

    def test_from_octets_rejects_bad(self):
        with pytest.raises(ValueError):
            from_octets(256, 0, 0, 0)


class TestReverseNames:
    def test_known_value(self):
        # The paper's running example: originator 1.2.3.4 is queried as
        # 4.3.2.1.in-addr.arpa (Figure 1).
        assert ip_to_reverse_name(0x01020304) == "4.3.2.1.in-addr.arpa"

    @given(addresses)
    def test_roundtrip(self, addr):
        assert reverse_name_to_ip(ip_to_reverse_name(addr)) == addr

    def test_accepts_trailing_dot_and_case(self):
        assert reverse_name_to_ip("4.3.2.1.IN-ADDR.ARPA.") == 0x01020304

    @pytest.mark.parametrize(
        "bad",
        [
            "example.com",
            "3.2.1.in-addr.arpa",  # partial address (zone cut, not a PTR name)
            "5.4.3.2.1.in-addr.arpa",
            "4.3.2.1.ip6.arpa",
        ],
    )
    def test_rejects_non_ptr_names(self, bad):
        assert not is_reverse_name(bad)
        with pytest.raises(ValueError):
            reverse_name_to_ip(bad)

    @given(addresses)
    def test_is_reverse_name_accepts_all_valid(self, addr):
        assert is_reverse_name(ip_to_reverse_name(addr))


class TestPrefix:
    def test_masks_host_bits(self):
        p = Prefix(str_to_ip("10.1.2.3"), 24)
        assert p.network == str_to_ip("10.1.2.0")

    def test_membership(self):
        p = Prefix.parse("192.168.0.0/16")
        assert str_to_ip("192.168.255.255") in p
        assert str_to_ip("192.169.0.0") not in p

    def test_size_and_bounds(self):
        p = Prefix.parse("1.0.0.0/8")
        assert p.size == 1 << 24
        assert p.first == str_to_ip("1.0.0.0")
        assert p.last == str_to_ip("1.255.255.255")

    def test_nth(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.nth(0) == p.first
        assert p.nth(255) == p.last
        with pytest.raises(IndexError):
            p.nth(256)

    def test_subprefixes(self):
        p = Prefix.parse("10.0.0.0/22")
        subs = list(p.subprefixes(24))
        assert len(subs) == 4
        assert all(p.contains_prefix(s) for s in subs)

    def test_contains_prefix_rejects_shorter(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")
        with pytest.raises(ValueError):
            Prefix(0, 33)

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_prefix_of_contains_address(self, addr, length):
        assert addr in prefix_of(addr, length)

    @given(addresses)
    def test_slash_helpers_consistent(self, addr):
        assert slash8(addr) == addr >> 24
        assert slash16(addr) == addr >> 16
        assert slash24(addr) == addr >> 8
        assert prefix_of(addr, 24).network == slash24(addr) << 8

    def test_str_renders_cidr(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"
