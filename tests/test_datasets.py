"""Tests for dataset specs, generation, and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_SPECS,
    generate_dataset,
    read_directory,
    read_log,
    spec_for,
    write_directory,
    write_log,
)
from repro.dnssim.message import QueryLogEntry
from repro.netmodel.world import NameStatus
from repro.sensor.directory import QuerierInfo


class TestSpecs:
    def test_paper_datasets_present(self):
        expected = {
            "JP-ditl", "B-post-ditl", "M-ditl", "M-ditl-2015",
            "M-sampled", "B-long", "B-multi-year",
        }
        assert set(DATASET_SPECS) == expected

    def test_durations_match_paper(self):
        assert DATASET_SPECS["JP-ditl"].duration_days == pytest.approx(50 / 24)
        assert DATASET_SPECS["B-post-ditl"].duration_days == pytest.approx(36 / 24)
        assert DATASET_SPECS["M-sampled"].duration_days == 270.0

    def test_sampling_only_on_m_sampled(self):
        for name, spec in DATASET_SPECS.items():
            if name == "M-sampled":
                assert spec.vantage.sampling == 10
            else:
                assert spec.vantage.sampling == 1

    def test_jp_scenario_forced_home(self):
        assert DATASET_SPECS["JP-ditl"].scenario.force_home_country == "jp"
        assert DATASET_SPECS["M-ditl"].scenario.force_home_country is None

    def test_heartbleed_only_in_m_sampled(self):
        assert DATASET_SPECS["M-sampled"].scenario.heartbleed_day is not None
        assert DATASET_SPECS["JP-ditl"].scenario.heartbleed_day is None

    def test_tiny_preset_shrinks(self):
        full = spec_for("M-sampled")
        tiny = spec_for("M-sampled", "tiny")
        assert tiny.duration_days < full.duration_days
        assert tiny.world_scale <= full.world_scale
        assert sum(tiny.scenario.initial_actors.values()) < sum(
            full.scenario.initial_actors.values()
        )

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ValueError):
            spec_for("nope")
        with pytest.raises(ValueError):
            spec_for("JP-ditl", preset="huge")


class TestGeneration:
    @pytest.fixture(scope="class")
    def tiny_jp(self):
        return generate_dataset(spec_for("JP-ditl", "tiny"))

    def test_sensor_sees_traffic(self, tiny_jp):
        assert len(tiny_jp.sensor.log) > 100

    def test_sensor_scope_respected(self, tiny_jp):
        jp_blocks = set(tiny_jp.world.geo.blocks_of("jp"))
        for entry in tiny_jp.sensor.log:
            assert (entry.originator >> 24) in jp_blocks

    def test_true_classes_cover_campaigns(self, tiny_jp):
        truth = tiny_jp.true_classes()
        for campaign in tiny_jp.scenario.campaigns:
            assert campaign.originator in truth

    def test_sources_bundle(self, tiny_jp):
        sources = tiny_jp.sources()
        assert sources.actors_by_ip
        some = next(iter(sources.actors_by_ip))
        assert sources.true_class(some) is not None

    def test_log_chronological(self, tiny_jp):
        times = [e.timestamp for e in tiny_jp.sensor.log]
        assert times == sorted(times)

    def test_regeneration_identical(self):
        one = generate_dataset(spec_for("B-post-ditl", "tiny"))
        two = generate_dataset(spec_for("B-post-ditl", "tiny"))
        assert len(one.sensor.log) == len(two.sensor.log)
        first = [(e.timestamp, e.querier, e.originator) for e in one.sensor.log]
        second = [(e.timestamp, e.querier, e.originator) for e in two.sensor.log]
        assert first == second


class TestIo:
    def test_log_roundtrip(self, tmp_path):
        entries = [
            QueryLogEntry(timestamp=1.5, querier=0x01020304, originator=0x05060708),
            QueryLogEntry(timestamp=2.25, querier=0xDEADBEEF, originator=0x0A0B0C0D),
        ]
        path = tmp_path / "log.txt"
        assert write_log(path, entries) == 2
        loaded = read_log(path)
        assert loaded == entries

    def test_log_skips_comments(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# header\n\n1.0 1.2.3.4 8.7.6.5.in-addr.arpa\n")
        loaded = read_log(path)
        assert len(loaded) == 1
        assert loaded[0].originator == 0x05060708

    def test_log_rejects_malformed(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("1.0 1.2.3.4\n")
        with pytest.raises(ValueError):
            read_log(path)

    def test_directory_roundtrip(self, tmp_path):
        infos = [
            QuerierInfo(addr=1, name="mail.x.com", status=NameStatus.OK, asn=5, country="us"),
            QuerierInfo(addr=2, name=None, status=NameStatus.NXDOMAIN, asn=None, country=None),
        ]
        path = tmp_path / "dir.jsonl"
        assert write_directory(path, infos) == 2
        directory = read_directory(path)
        assert directory.lookup(1) == infos[0]
        assert directory.lookup(2) == infos[1]

    def test_directory_unknown_addr_defaults(self, tmp_path):
        path = tmp_path / "dir.jsonl"
        write_directory(path, [])
        directory = read_directory(path)
        info = directory.lookup(42)
        assert info.status is NameStatus.NXDOMAIN and info.name is None

    def test_directory_rejects_bad_json(self, tmp_path):
        path = tmp_path / "dir.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError):
            read_directory(path)

    def test_full_dataset_roundtrip(self, tmp_path):
        dataset = generate_dataset(spec_for("B-post-ditl", "tiny"))
        log_path = tmp_path / "b.log"
        write_log(log_path, dataset.sensor.log)
        loaded = read_log(log_path)
        assert len(loaded) == len(dataset.sensor.log)
        directory_path = tmp_path / "b.dir"
        world_directory = dataset.directory()
        infos = [world_directory.lookup(q.addr) for q in dataset.world.queriers[:200]]
        write_directory(directory_path, infos)
        loaded_directory = read_directory(directory_path)
        for info in infos:
            assert loaded_directory.lookup(info.addr) == info
