"""Tests for the static keyword matcher against the paper's rules."""

from __future__ import annotations

import pytest

from repro.netmodel.world import NameStatus
from repro.sensor.keywords import STATIC_CATEGORIES, classify_name, classify_querier


class TestPaperExamples:
    def test_paper_worked_examples(self):
        # § III-C: "both mail.ns.example.com and mail-ns.example.com are mail"
        assert classify_name("mail.ns.example.com") == "mail"
        assert classify_name("mail-ns.example.com") == "mail"

    def test_left_most_component_wins(self):
        assert classify_name("ns.mail.example.com") == "ns"

    def test_component_beats_suffix(self):
        # mail.google.com is both google and mail; component matching wins.
        assert classify_name("mail.google.com") == "mail"

    def test_home_with_address_digits(self):
        assert classify_name("home1-2-3-4.example.com") == "home"
        assert classify_name("dsl-10-0-0-1.provider.net") == "home"

    def test_dynamic_keyword(self):
        assert classify_name("dynamic19.isp.example") == "home"


class TestCategories:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("smtp3.corp.example", "mail"),
            ("mx1.example.org", "mail"),
            ("sendmail.example.org", "mail"),  # send* wildcard
            ("newsletter.example.org", "mail"),
            ("cache2.isp.example", "ns"),
            ("resolver1.isp.example", "ns"),
            ("cns.isp.example", "ns"),
            ("firewall2.company.example", "fw"),
            ("fw1.company.example", "fw"),
            ("wall3.company.example", "fw"),
            ("ironport.company.example", "antispam"),
            ("spamfilter.company.example", "antispam"),
            ("www.example.com", "www"),
            ("ntp1.university.example", "ntp"),
            ("srv42.opaque.example", "other"),
            ("gateway9.opaque.example", "other"),
        ],
    )
    def test_component_keywords(self, name, expected):
        assert classify_name(name) == expected

    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("a23-1.deploy.akamaitechnologies.com", "cdn"),
            ("node.edgecastcdn.net", "cdn"),
            ("node.cdngc.net", "cdn"),
            ("x.llnw.net", "cdn"),
            ("ec2-1-2-3-4.compute-1.amazonaws.com", "aws"),
            ("vm3.cloudapp.azure.com", "ms"),
            ("crawl-66-249-66-1.googlebot.com", "google"),
            ("rate-limited-proxy.1e100.net", "google"),
        ],
    )
    def test_suffix_categories(self, name, expected):
        assert classify_name(name) == expected

    def test_suffix_requires_label_boundary(self):
        # notamazonaws.com must not match the amazonaws.com suffix.
        assert classify_name("x.notamazonaws.com") == "other"

    def test_case_and_trailing_dot_insensitive(self):
        assert classify_name("MAIL.Example.COM.") == "mail"

    def test_token_prefix_matching(self):
        # "mailer5" starts with "mail"; "imap-2" with "imap".
        assert classify_name("mailer5.example.com") == "mail"
        assert classify_name("imap-2.example.com") == "mail"

    def test_no_substring_matching_inside_tokens(self):
        # "hairpin" contains "ip" but does not start with it.
        assert classify_name("hairpin.example.com") == "other"


class TestQuerierClassification:
    def test_nxdomain(self):
        assert classify_querier(None, NameStatus.NXDOMAIN) == "nxdomain"

    def test_unreach(self):
        assert classify_querier(None, NameStatus.UNREACH) == "unreach"

    def test_ok_with_name(self):
        assert classify_querier("mail.example.com", NameStatus.OK) == "mail"

    def test_ok_without_name_is_nxdomain(self):
        # Defensive: status says OK but no name materialized.
        assert classify_querier(None, NameStatus.OK) == "nxdomain"

    def test_all_outputs_are_known_categories(self):
        samples = [
            "mail.x.com", "home1.x.com", "ns.x.com", "weird.x.com",
            "a.akamai.net", "www.x.com", "ntp.x.com",
        ]
        for name in samples:
            assert classify_name(name) in STATIC_CATEGORIES


class TestGeneratorParserAgreement:
    """The world's synthesized names must be recognized as their role."""

    def test_role_names_mostly_classified_correctly(self, small_world):
        from repro.netmodel.namespace import QuerierRole

        expected = {
            QuerierRole.HOME: "home",
            QuerierRole.MAIL: "mail",
            QuerierRole.NS: "ns",
            QuerierRole.FIREWALL: "fw",
            QuerierRole.ANTISPAM: "antispam",
            QuerierRole.WWW: "www",
            QuerierRole.NTP: "ntp",
            QuerierRole.CDN: "cdn",
            QuerierRole.AWS: "aws",
            QuerierRole.MS: "ms",
            QuerierRole.GOOGLE: "google",
        }
        for role, category in expected.items():
            named = [
                q for q in small_world.queriers if q.role is role and q.name
            ]
            if not named:
                continue
            hits = sum(1 for q in named if classify_name(q.name) == category)
            assert hits / len(named) > 0.9, (role, category)
