"""The curated public API surface, kept in sync with docs/API.md.

Three contracts:

* every name in the curated ``__all__`` lists imports and resolves;
* every *public* module-level attribute of the curated packages is
  either in ``__all__`` or a submodule — nothing leaks in silently;
* every exported name appears in docs/API.md, so additions and
  removals must touch the docs in the same change.
"""

from __future__ import annotations

import re
import types
from pathlib import Path

import pytest

import repro
import repro.federation
import repro.logstore
import repro.sensor
import repro.service
import repro.sketch
import repro.telemetry

DOCS = Path(__file__).resolve().parent.parent / "docs" / "API.md"

CURATED = {
    "repro": repro,
    "repro.federation": repro.federation,
    "repro.logstore": repro.logstore,
    "repro.sensor": repro.sensor,
    "repro.service": repro.service,
    "repro.sketch": repro.sketch,
    "repro.telemetry": repro.telemetry,
}


def documented_tokens() -> set[str]:
    """Every identifier-ish token inside a backtick span in docs/API.md.

    Fenced ``` blocks are lifted out first — naive backtick pairing
    would go out of phase after each fence and invert the inline spans.
    """
    text = DOCS.read_text()
    tokens: set[str] = set()
    fence = re.compile(r"```.*?```", flags=re.S)
    for block in fence.findall(text):
        tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", block))
    for code in re.findall(r"`([^`\n]+)`", fence.sub("", text)):
        # Split compound spans like `a, b / c{x,y}` into identifiers,
        # expanding one level of {alt1,alt2} brace groups.
        for expanded in _expand_braces(code):
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", expanded))
    return tokens


def _expand_braces(code: str) -> list[str]:
    match = re.search(r"\{([^{}]*)\}", code)
    if not match:
        return [code]
    head, tail = code[: match.start()], code[match.end() :]
    out: list[str] = []
    for alt in match.group(1).split(","):
        out.extend(_expand_braces(head + alt + tail))
    return out


@pytest.mark.parametrize("name", sorted(CURATED))
def test_all_names_resolve(name):
    module = CURATED[name]
    for exported in module.__all__:
        assert hasattr(module, exported), f"{name}.__all__ lists {exported!r}"


@pytest.mark.parametrize("name", sorted(CURATED))
def test_all_has_no_duplicates(name):
    exported = CURATED[name].__all__
    assert len(exported) == len(set(exported))


@pytest.mark.parametrize("name", sorted(CURATED))
def test_no_unlisted_public_attributes(name):
    """Additions to the public surface must be deliberate (in __all__)."""
    module = CURATED[name]
    public = {
        attr
        for attr in vars(module)
        if not attr.startswith("_")
        and not isinstance(getattr(module, attr), types.ModuleType)
    }
    leaked = public - set(module.__all__)
    assert not leaked, f"public attributes of {name} missing from __all__: {sorted(leaked)}"


@pytest.mark.parametrize("name", sorted(CURATED))
def test_exports_are_documented(name):
    """Every export appears in docs/API.md (backticked)."""
    tokens = documented_tokens()
    undocumented = [
        exported
        for exported in CURATED[name].__all__
        if not exported.startswith("_") and exported not in tokens
    ]
    assert not undocumented, (
        f"exports of {name} not mentioned in docs/API.md: {undocumented}"
    )


def test_top_level_reexports_are_consistent():
    """Top-level convenience names are the same objects as the originals."""
    assert repro.SensorEngine is repro.sensor.SensorEngine
    assert repro.SensorConfig is repro.sensor.SensorConfig
    assert repro.SensedWindow is repro.sensor.SensedWindow
    assert repro.StageStats is repro.sensor.StageStats
    assert repro.MetricsRegistry is repro.telemetry.MetricsRegistry
    assert repro.write_metrics is repro.telemetry.write_metrics
    assert repro.span is repro.telemetry.span


def test_removed_shim_raises_on_construction():
    """BackscatterPipeline stays importable but hard-fails with migration help."""
    assert "BackscatterPipeline" in repro.sensor.__all__
    assert "BackscatterPipeline" in repro.__all__
    with pytest.raises(RuntimeError, match="SensorEngine"):
        repro.sensor.BackscatterPipeline(None)
