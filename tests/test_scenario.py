"""Tests for long-horizon scenarios: actors, churn, teams, Heartbleed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity import (
    APPLICATION_CLASSES,
    MALICIOUS_CLASSES,
    Scenario,
    ScenarioConfig,
    build_scenario,
)
from repro.netmodel import World, WorldConfig, slash24


@pytest.fixture(scope="module")
def scenario_world():
    return World(WorldConfig(seed=77, scale=0.3))


@pytest.fixture(scope="module")
def scenario(scenario_world) -> Scenario:
    config = ScenarioConfig(
        seed=5,
        duration_days=60.0,
        heartbleed_day=30.0,
        heartbleed_extra_scanners=8,
        audience_scale=0.3,
    )
    return build_scenario(scenario_world, config)


class TestScenarioBuild:
    def test_all_classes_represented(self, scenario):
        present = {actor.app_class for actor in scenario.actors}
        assert present == set(APPLICATION_CLASSES)

    def test_actor_addresses_unique(self, scenario):
        addrs = [a.originator for a in scenario.actors]
        assert len(addrs) == len(set(addrs))

    def test_campaigns_sorted_and_clipped(self, scenario):
        starts = [c.start for c in scenario.campaigns]
        assert starts == sorted(starts)
        horizon = scenario.config.duration_days * 86400.0
        for campaign in scenario.campaigns:
            assert campaign.start < horizon
            assert campaign.end > 0.0

    def test_campaign_originators_come_from_actors(self, scenario):
        actor_ips = {a.originator for a in scenario.actors}
        assert {c.originator for c in scenario.campaigns} <= actor_ips

    def test_episodic_actors_recur(self, scenario):
        # A long-lived spam actor should emit several campaigns.
        from collections import Counter

        per_actor = Counter(c.originator for c in scenario.campaigns if c.app_class == "spam")
        assert max(per_actor.values(), default=0) >= 2

    def test_continuous_actor_single_campaign(self, scenario):
        from collections import Counter

        per_actor = Counter(c.originator for c in scenario.campaigns if c.app_class == "cdn")
        assert per_actor and max(per_actor.values()) == 1

    def test_deterministic(self):
        # Allocation state is per-world, so compare scenarios built on
        # two identically seeded worlds.
        config = ScenarioConfig(seed=9, duration_days=20.0, audience_scale=0.3)

        def build():
            world = World(WorldConfig(seed=77, scale=0.3))
            return build_scenario(world, config)

        one, two = build(), build()
        assert len(one.actors) == len(two.actors)
        assert [a.originator for a in one.actors] == [a.originator for a in two.actors]
        assert [a.born_day for a in one.actors] == [a.born_day for a in two.actors]


class TestLifetimes:
    def test_malicious_lifetimes_shorter(self, scenario):
        def mean_life(classes):
            values = [
                a.lifetime_days for a in scenario.actors
                if a.app_class in classes and not a.persistent
            ]
            return float(np.mean(values)) if values else 0.0

        assert mean_life(MALICIOUS_CLASSES) < mean_life({"cdn", "cloud", "dns"})

    def test_alive_counts_match_lifetimes(self, scenario):
        counts = scenario.alive_counts(day=0.0)
        assert sum(counts.values()) > 0
        for actor in scenario.actors:
            if actor.alive_on(0.0):
                assert actor.born_day <= 0.0 <= actor.dies_day


class TestTeamsAndEvents:
    def test_team_blocks_allocated(self, scenario):
        assert len(scenario.team_prefixes) == scenario.config.team_blocks
        team_actors = [a for a in scenario.actors if a.team_block is not None]
        assert team_actors, "no scan actors landed in team blocks"
        for actor in team_actors:
            assert slash24(actor.originator) << 8 == actor.team_block.network

    def test_heartbleed_injects_tcp443(self, scenario):
        burst = [
            a for a in scenario.actors
            if a.variant == "tcp443"
            and scenario.config.heartbleed_day
            <= a.born_day
            <= scenario.config.heartbleed_day + scenario.config.heartbleed_window_days
        ]
        assert len(burst) >= scenario.config.heartbleed_extra_scanners

    def test_persistent_scanners_exist(self, scenario):
        persistent = [a for a in scenario.actors if a.persistent]
        assert persistent
        assert all(a.app_class == "scan" for a in persistent)
        assert all(a.variant in ("tcp22", "multi") for a in persistent)

    def test_forced_home_country(self, scenario_world):
        config = ScenarioConfig(
            seed=3, duration_days=10.0, force_home_country="jp", audience_scale=0.3
        )
        forced = build_scenario(scenario_world, config)
        for actor in forced.actors:
            assert scenario_world.country_of(actor.originator) == "jp"
