"""Tests for the experiment-harness plumbing (caching, windowing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.activity.diurnal import DiurnalPattern
from repro.experiments import common


class TestConstants:
    def test_min_queriers_only_for_long_datasets(self):
        assert set(common.MIN_QUERIERS) == {"M-sampled", "B-multi-year", "B-long"}
        assert all(v <= 20 for v in common.MIN_QUERIERS.values())

    def test_window_days_match_paper(self):
        # § III-B: d = 7 days for M-sampled, d = 1 day for B-multi-year.
        assert common.WINDOW_DAYS["M-sampled"] == 7.0
        assert common.WINDOW_DAYS["B-multi-year"] == 1.0

    def test_curation_windows_cover_msampled_trio(self):
        # § III-E: three curations about a month apart.
        assert len(common.CURATION_WINDOWS["M-sampled"]) == 3


class TestLabeledFeaturesCache:
    def test_cached_instance_reused(self):
        one = common.labeled_features("JP-ditl", "tiny")
        two = common.labeled_features("JP-ditl", "tiny")
        assert one is two

    def test_bundle_consistency(self):
        bundle = common.labeled_features("JP-ditl", "tiny")
        assert len(bundle.X) == len(bundle.y) == len(bundle.originators)
        assert bundle.n_classes == len(bundle.encoder)
        assert set(bundle.class_names()) <= set(
            __import__("repro.activity", fromlist=["APPLICATION_CLASSES"]).APPLICATION_CLASSES
        )
        assert np.isfinite(bundle.X).all()


class TestDiurnalVectorization:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=24.0),
        st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=20),
    )
    def test_weights_matches_scalar(self, strength, peak, times):
        pattern = DiurnalPattern(strength=strength, peak_hour=peak)
        array = pattern.weights(np.array(times))
        for t, w in zip(times, array):
            assert w == pytest.approx(pattern.weight(t), rel=1e-9, abs=1e-12)
