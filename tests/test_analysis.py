"""Tests for the analysis package: footprints, consistency, teams, trends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.consistency import (
    consistency_ratios,
    majority_fraction,
    ratio_cdf,
)
from repro.analysis.controlled import fit_power_law, run_trial
from repro.analysis.footprint import ccdf, class_counts, class_mix_of_top, footprint_sizes
from repro.analysis.longitudinal import AnalysisWindow, WindowedAnalysis
from repro.analysis.teams import block_scan_series, find_teams
from repro.analysis.trends import churn_series, class_count_series, reappearance_series
from repro.netmodel.addressing import slash24
from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.curation import LabeledSet
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FEATURE_NAMES, FeatureSet


def observation(originator: int, n_queriers: int) -> OriginatorObservation:
    obs = OriginatorObservation(originator=originator)
    for i in range(n_queriers):
        obs.add(float(i) * 40, 10_000 + i)
    return obs


def make_window(index: int, sizes: dict[int, int], classes: dict[int, str]) -> AnalysisWindow:
    observations = ObservationWindow(start=index * 86400.0, end=(index + 1) * 86400.0)
    for originator, size in sizes.items():
        observations.observations[originator] = observation(originator, size)
    originators = np.array(sorted(sizes), dtype=np.int64)
    features = FeatureSet(
        originators=originators,
        matrix=np.zeros((len(sizes), len(FEATURE_NAMES))),
        context=WindowContext(
            start=observations.start, end=observations.end,
            total_ases=10, total_countries=5, total_queriers=100,
        ),
        footprints=np.array([sizes[o] for o in originators], dtype=np.int64),
    )
    return AnalysisWindow(
        index=index,
        start_day=float(index),
        end_day=float(index + 1),
        observations=observations,
        features=features,
        classification=dict(classes),
    )


def make_analysis(windows: list[AnalysisWindow]) -> WindowedAnalysis:
    return WindowedAnalysis(dataset=None, window_days=1.0, windows=windows)


class TestFootprint:
    def test_sizes_descending(self):
        window = ObservationWindow(start=0.0, end=1.0)
        for originator, size in ((1, 5), (2, 50), (3, 20)):
            window.observations[originator] = observation(originator, size)
        sizes = footprint_sizes(window)
        assert list(sizes) == [50, 20, 5]

    def test_min_queriers_filter(self):
        window = ObservationWindow(start=0.0, end=1.0)
        window.observations[1] = observation(1, 5)
        assert len(footprint_sizes(window, min_queriers=10)) == 0

    def test_ccdf_properties(self):
        x, survival = ccdf(np.array([1, 1, 2, 10]))
        assert survival[0] == 1.0
        assert (np.diff(survival) <= 0).all()
        assert x[-1] == 10

    def test_ccdf_empty(self):
        x, survival = ccdf(np.array([]))
        assert len(x) == 0 and len(survival) == 0

    def test_class_mix(self):
        window = ObservationWindow(start=0.0, end=1.0)
        for originator, size in ((1, 100), (2, 90), (3, 80), (4, 25)):
            window.observations[originator] = observation(originator, size)
        classification = {1: "spam", 2: "spam", 3: "scan"}
        mix = class_mix_of_top(window, classification, n=3)
        assert mix.fraction("spam") == pytest.approx(2 / 3)
        assert mix.fraction("scan") == pytest.approx(1 / 3)
        wider = class_mix_of_top(window, classification, n=10)
        assert wider.fractions.get("other") == pytest.approx(1 / 4)

    def test_class_counts(self):
        assert class_counts({1: "a", 2: "a", 3: "b"}) == {"a": 2, "b": 1}


class TestConsistency:
    def test_stable_originator_r_one(self):
        windows = [
            make_window(i, {1: 30}, {1: "scan"}) for i in range(6)
        ]
        records = consistency_ratios(make_analysis(windows))
        assert len(records) == 1
        assert records[0].r == 1.0
        assert records[0].preferred_class == "scan"

    def test_flapping_originator_low_r(self):
        classes = ["scan", "spam", "scan", "spam", "scan", "spam"]
        windows = [
            make_window(i, {1: 30}, {1: classes[i]}) for i in range(6)
        ]
        records = consistency_ratios(make_analysis(windows))
        assert records[0].r == pytest.approx(0.5)

    def test_min_appearances_filter(self):
        windows = [make_window(i, {1: 30}, {1: "scan"}) for i in range(3)]
        assert consistency_ratios(make_analysis(windows), min_appearances=4) == []

    def test_footprint_threshold(self):
        windows = [make_window(i, {1: 30}, {1: "scan"}) for i in range(6)]
        assert consistency_ratios(make_analysis(windows), min_queriers=50) == []

    def test_cdf_and_majority(self):
        windows = [make_window(i, {1: 30, 2: 30}, {1: "scan", 2: "scan" if i < 5 else "spam"}) for i in range(6)]
        records = consistency_ratios(make_analysis(windows))
        values, cumulative = ratio_cdf(records)
        assert cumulative[-1] == 1.0
        assert majority_fraction(records) == 1.0


class TestTeams:
    def test_find_teams(self):
        block = 0x0A0A0A
        members = {(block << 8) | i: "scan" for i in range(1, 6)}
        lonely = {0x14141401: "scan"}
        other = {0x1E1E1E01: "spam"}
        sizes = {o: 30 for o in {**members, **lonely, **other}}
        windows = [make_window(0, sizes, {**members, **lonely, **other})]
        summary, teams = find_teams(make_analysis(windows))
        assert summary.blocks_with_4plus == 1
        assert summary.single_class_teams == 1
        assert block in teams and len(teams[block]) == 5

    def test_mixed_class_block_not_single(self):
        block = 0x0A0A0A
        classes = {(block << 8) | i: "scan" for i in range(1, 6)}
        classes[(block << 8) | 99] = "spam"
        sizes = {o: 30 for o in classes}
        windows = [make_window(0, sizes, classes)]
        summary, _teams = find_teams(make_analysis(windows))
        assert summary.single_class_teams == 0
        assert summary.multi_class_blocks == 1

    def test_block_series(self):
        block = 0x0A0A0A
        w0 = make_window(0, {(block << 8) | 1: 30}, {(block << 8) | 1: "scan"})
        w1 = make_window(
            1,
            {(block << 8) | 1: 30, (block << 8) | 2: 30},
            {(block << 8) | 1: "scan", (block << 8) | 2: "scan"},
        )
        series = block_scan_series(make_analysis([w0, w1]), [block])
        assert [count for _, count in series[block]] == [1, 2]


class TestTrends:
    def test_class_count_series(self):
        windows = [
            make_window(0, {1: 30, 2: 30}, {1: "scan", 2: "spam"}),
            make_window(1, {1: 30}, {1: "scan"}),
        ]
        series = class_count_series(make_analysis(windows))
        assert series[0][1] == {"scan": 1, "spam": 1}
        assert series[1][2] == 1

    def test_churn_series(self):
        windows = [
            make_window(0, {1: 30, 2: 30}, {1: "scan", 2: "scan"}),
            make_window(1, {2: 30, 3: 30}, {2: "scan", 3: "scan"}),
        ]
        points = churn_series(make_analysis(windows))
        assert points[-1].new == 1
        assert points[-1].continuing == 1
        assert points[-1].departing == 1

    def test_reappearance_series(self):
        labeled = LabeledSet.from_pairs([(1, "spam"), (2, "cdn")])
        windows = [
            make_window(0, {1: 30, 2: 30}, {}),
            make_window(1, {2: 30}, {}),
        ]
        analysis = make_analysis(windows)
        malicious = reappearance_series(analysis, labeled, "malicious")
        benign = reappearance_series(analysis, labeled, "benign")
        assert [c for _, c in malicious] == [1, 0]
        assert [c for _, c in benign] == [1, 1]

    def test_reappearance_single_class(self):
        labeled = LabeledSet.from_pairs([(1, "spam")])
        windows = [make_window(0, {1: 30}, {})]
        series = reappearance_series(make_analysis(windows), labeled, "spam")
        assert series == [(0.5, 1)]


class TestControlled:
    def test_trial_monotone_in_fraction(self, small_world):
        small = run_trial(small_world, 1e-5, seed=1)
        large = run_trial(small_world, 1e-2, seed=1)
        assert large.final_queriers > small.final_queriers
        assert large.targets > small.targets

    def test_roots_attenuated(self, small_world):
        trial = run_trial(small_world, 1e-2, seed=2)
        assert trial.b_root_queriers < trial.final_queriers / 10
        assert trial.m_root_queriers < trial.final_queriers / 10

    def test_fraction_validation(self, small_world):
        with pytest.raises(ValueError):
            run_trial(small_world, 0.0)
        with pytest.raises(ValueError):
            run_trial(small_world, 1.5)

    def test_power_law_fit(self):
        from repro.analysis.controlled import ControlledTrial

        trials = [
            ControlledTrial(10**-k, 10**(8 - k), 0, int(10 ** ((8 - k) * 0.7)), 0, 0)
            for k in range(1, 5)
        ]
        power, _ = fit_power_law(trials)
        assert power == pytest.approx(0.7, abs=0.01)

    def test_power_law_needs_points(self):
        with pytest.raises(ValueError):
            fit_power_law([])
