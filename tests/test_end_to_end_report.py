"""End-to-end: tiny dataset → pipeline → operator report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.alerts import SurgeDetector
from repro.analysis.longitudinal import analyze_dataset
from repro.datasets import generate_dataset, spec_for
from repro.sensor.report import build_report, render_report


@pytest.fixture(scope="module")
def tiny_analysis():
    dataset = generate_dataset(spec_for("M-sampled", "tiny"))
    return analyze_dataset(
        dataset,
        window_days=7.0,
        min_queriers=5,
        curation_windows=(0,),
        per_class_cap=40,
        majority_runs=1,
    )


class TestEndToEndReporting:
    def test_reports_render_for_every_window(self, tiny_analysis):
        previous = None
        detector = SurgeDetector("scan", window=3, min_baseline=1)
        rendered = []
        for window in tiny_analysis.windows:
            scan_count = sum(
                1 for c in window.classification.values() if c == "scan"
            )
            alert = detector.update(window.mid_day, scan_count)
            report = build_report(
                window.observations,
                window.classification,
                previous_classification=previous,
                alerts=[alert] if alert else [],
                min_queriers=5,
            )
            text = render_report(report)
            rendered.append(text)
            assert text.startswith("# Backscatter sensor report")
            assert f"days {window.start_day:.1f}" in text
            previous = window.classification
        assert len(rendered) == len(tiny_analysis.windows)

    def test_second_window_reports_churn(self, tiny_analysis):
        windows = tiny_analysis.windows
        if len(windows) < 2 or not windows[1].classification:
            pytest.skip("tiny draw produced no second-window classification")
        report = build_report(
            windows[1].observations,
            windows[1].classification,
            previous_classification=windows[0].classification,
            min_queriers=5,
        )
        assert report.new_originators or report.departed_originators or (
            set(windows[1].classification) == set(windows[0].classification)
        )

    def test_report_counts_match_window(self, tiny_analysis):
        window = tiny_analysis.windows[0]
        report = build_report(
            window.observations, window.classification, min_queriers=5
        )
        assert report.observed_originators == len(window.observations)
        assert report.analyzable_originators == sum(
            1
            for o in window.observations.observations.values()
            if o.footprint >= 5
        )
