"""Tests for originator selection, curation, and the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity import APPLICATION_CLASSES, SimulationEngine, build_campaign
from repro.sensor import (
    BackscatterPipeline,
    LabeledExample,
    LabeledSet,
    SensorConfig,
    SensorEngine,
    analyzable,
    rank_by_footprint,
    top_n,
)
from repro.sensor.collection import ObservationWindow, OriginatorObservation


def observation(originator: int, n_queriers: int):
    obs = OriginatorObservation(originator=originator)
    for i in range(n_queriers):
        obs.add(float(i) * 40, 1000 + i)
    return obs


def window_of(sizes: dict[int, int]) -> ObservationWindow:
    window = ObservationWindow(start=0.0, end=86400.0)
    for originator, size in sizes.items():
        window.observations[originator] = observation(originator, size)
    return window


class TestSelection:
    def test_analyzable_threshold(self):
        window = window_of({1: 25, 2: 19, 3: 20})
        selected = {o.originator for o in analyzable(window)}
        assert selected == {1, 3}

    def test_rank_is_descending_and_stable(self):
        window = window_of({1: 25, 2: 40, 3: 25})
        ranked = rank_by_footprint(list(window.observations.values()))
        assert [o.originator for o in ranked] == [2, 1, 3]

    def test_top_n(self):
        window = window_of({i: 20 + i for i in range(1, 10)})
        top = top_n(window, 3)
        assert [o.originator for o in top] == [9, 8, 7]

    def test_bad_args(self):
        window = window_of({})
        with pytest.raises(ValueError):
            top_n(window, 0)
        with pytest.raises(ValueError):
            analyzable(window, min_queriers=0)


class TestLabeledSet:
    def test_from_pairs_and_lookup(self):
        labeled = LabeledSet.from_pairs([(1, "spam"), (2, "scan")])
        assert labeled.label_of(1) == "spam"
        assert labeled.label_of(99) is None
        assert 2 in labeled and len(labeled) == 2

    def test_one_label_per_originator(self):
        labeled = LabeledSet.from_pairs([(1, "spam")])
        labeled.add(LabeledExample(1, "scan"))
        assert labeled.label_of(1) == "scan"
        assert len(labeled) == 1

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            LabeledExample(1, "bogus")

    def test_restrict_to(self):
        labeled = LabeledSet.from_pairs([(1, "spam"), (2, "scan"), (3, "mail")])
        subset = labeled.restrict_to({1, 3})
        assert subset.originators() == {1, 3}

    def test_merged_with_newer_wins(self):
        old = LabeledSet.from_pairs([(1, "spam")], curated_day=0.0)
        new = LabeledSet.from_pairs([(1, "scan"), (2, "mail")], curated_day=30.0)
        merged = old.merged_with(new)
        assert merged.label_of(1) == "scan"
        assert len(merged) == 2

    def test_trainability_thresholds(self):
        pairs = [(i, "spam") for i in range(30)] + [(100 + i, "scan") for i in range(30)]
        labeled = LabeledSet.from_pairs(pairs)
        assert labeled.is_trainable(min_per_class=20, min_total=50)
        assert not labeled.is_trainable(min_per_class=20, min_total=100)
        assert not labeled.is_trainable(min_per_class=40, min_total=50)

    def test_class_counts_and_remove(self):
        labeled = LabeledSet.from_pairs([(1, "spam"), (2, "spam"), (3, "scan")])
        assert labeled.class_counts()["spam"] == 2
        labeled.remove(1)
        assert labeled.class_counts()["spam"] == 1
        labeled.remove(999)  # no-op


@pytest.fixture(scope="module")
def trained_engine(small_world):
    """An engine trained on a fresh 2-day simulation at a JP sensor."""
    from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy, ResolverConfig

    hierarchy = DnsHierarchy(
        small_world,
        seed=7,
        resolver_config=ResolverConfig(national_warm_shared=0.8, national_warm_self=0.5),
    )
    sensor = hierarchy.attach_national(
        Authority(
            name="jp",
            level=AuthorityLevel.NATIONAL,
            country="jp",
            scope_slash8=frozenset(small_world.geo.blocks_of("jp")),
        )
    )
    engine = SimulationEngine(small_world, hierarchy)
    rng = np.random.default_rng(11)
    truth: dict[int, str] = {}
    for app_class in APPLICATION_CLASSES:
        for _ in range(4):
            campaign = build_campaign(
                small_world, app_class, rng, start=0.0, duration_days=2.0,
                home_country="jp",
            )
            engine.add(campaign)
            truth[campaign.originator] = app_class
    engine.run(0.0, 2 * 86400.0)
    from repro.sensor import WorldDirectory

    trained = SensorEngine(
        WorldDirectory(small_world), SensorConfig(majority_runs=3)
    )
    features = trained.featurize(
        trained.collect(list(sensor.log), 0.0, 2 * 86400.0)
    )
    labeled = LabeledSet.from_pairs(
        (int(o), truth[int(o)]) for o in features.originators if int(o) in truth
    )
    trained.fit(features, labeled)
    return trained, features, labeled, truth


class TestPipeline:
    def test_features_extracted(self, trained_engine):
        _, features, labeled, _ = trained_engine
        assert len(features) >= 10
        assert len(labeled) >= 10

    def test_classification_returns_known_classes(self, trained_engine):
        engine, features, _, _ = trained_engine
        verdicts = engine.classify(features)
        assert len(verdicts) == len(features)
        for verdict in verdicts:
            assert verdict.app_class in APPLICATION_CLASSES
            assert verdict.footprint >= 20

    def test_training_set_mostly_recovered(self, trained_engine):
        engine, features, _, truth = trained_engine
        labels = engine.classify_map(features)
        correct = sum(1 for o, c in labels.items() if truth.get(o) == c)
        assert correct / len(labels) > 0.7

    def test_deterministic(self, trained_engine):
        engine, features, _, _ = trained_engine
        assert engine.classify_map(features) == engine.classify_map(features)

    def test_unfitted_engine_raises(self, small_world):
        from repro.sensor import WorldDirectory

        engine = SensorEngine(WorldDirectory(small_world))
        with pytest.raises(RuntimeError):
            engine.classify_map(
                __import__("repro.sensor", fromlist=["FeatureSet"]).FeatureSet(
                    originators=np.array([], dtype=np.int64),
                    matrix=np.zeros((0, 22)),
                    context=None,
                    footprints=np.array([], dtype=np.int64),
                )
            )

    def test_fit_requires_overlap(self, trained_engine, small_world):
        from repro.sensor import WorldDirectory

        engine = SensorEngine(WorldDirectory(small_world))
        _, features, _, _ = trained_engine
        stranger = LabeledSet.from_pairs([(1, "spam")])
        with pytest.raises(ValueError):
            engine.fit(features, stranger)


class TestRemovedShim:
    def test_backscatter_pipeline_raises_with_migration(self, small_world):
        from repro.sensor import WorldDirectory

        with pytest.raises(RuntimeError, match="SensorEngine"):
            BackscatterPipeline(WorldDirectory(small_world), majority_runs=3)
        with pytest.raises(RuntimeError, match="docs/API.md"):
            BackscatterPipeline()
