"""Tests for the sharded federation layer (`repro.federation`).

The load-bearing property: N shard engines merged by the driver are
bit-identical to one `SensorEngine` over the unpartitioned input — rows,
matrices, contexts, verdicts, and stage accounting — across batch vs
streaming and exact vs sketch mode, for any shard count.  Plus the
driver-owned reorder front, the partition helpers, and cross-vantage
verdict fusion.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.federation import (
    FederatedSensor,
    FusedOriginator,
    ReorderFront,
    fuse_verdicts,
    note_first_appearance,
    partition_arrays,
    shard_of,
)
from repro.logstore import EntryBlock
from repro.netmodel.world import NameStatus
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import ClassifiedOriginator, SensorConfig, SensorEngine
from repro.telemetry import MetricsRegistry


def entry(ts: float, querier: int = 1, originator: int = 2) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


COUNTRIES = ("jp", "us", "de")


def directory_for(queriers: range) -> StaticDirectory:
    return StaticDirectory(
        {
            q: QuerierInfo(
                addr=q,
                name=f"host{q}.example.net",
                status=NameStatus.OK,
                asn=q % 5 + 1,
                country=COUNTRIES[q % len(COUNTRIES)],
            )
            for q in queriers
        }
    )


def synthetic_entries(
    n_originators: int = 8,
    queriers_per: int = 12,
    windows: int = 3,
    width: float = 100.0,
) -> list[QueryLogEntry]:
    """A deterministic multi-window log with dedup-able repeats."""
    rng = np.random.default_rng(7)
    out: list[QueryLogEntry] = []
    for w in range(windows):
        for o in range(1, n_originators + 1):
            for k in range(queriers_per):
                q = 100 + (o * 13 + k * 7) % 40
                t = w * width + float(rng.uniform(0.0, width - 1.0))
                out.append(entry(t, querier=q, originator=o))
                if k % 4 == 0:  # a repeat inside the 30 s dedup horizon
                    out.append(entry(min(t + 5.0, w * width + width - 0.5),
                                     querier=q, originator=o))
    out.sort(key=lambda e: e.timestamp)
    return out


def assert_windows_match(merged, sensed) -> None:
    """One FederatedWindow against the single engine's SensedWindow."""
    expected = sensed.features
    got = merged.features
    assert np.array_equal(got.originators, expected.originators)
    assert np.array_equal(got.matrix, expected.matrix)
    assert np.array_equal(got.footprints, expected.footprints)
    assert got.context == expected.context
    assert merged.verdicts == sensed.verdicts


def stats_snapshot(stats) -> list[tuple[str, int, int, int]]:
    return [(s.name, s.items_in, s.items_out, s.dropped) for s in stats]


class TestPartitionHelpers:
    def test_shard_of_is_deterministic_and_in_range(self):
        originators = np.arange(0, 5000, dtype=np.int64)
        a = shard_of(originators, 4, seed=0)
        b = shard_of(originators, 4, seed=0)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4
        # All shards get a share of a diverse keyspace.
        assert len(np.unique(a)) == 4
        # A different seed permutes the assignment.
        assert not np.array_equal(a, shard_of(originators, 4, seed=1))

    def test_partition_arrays_covers_every_event(self):
        ts = np.arange(20, dtype=np.float64)
        qs = np.arange(20, dtype=np.int64)
        os_ = (np.arange(20, dtype=np.int64) % 6) + 1
        parts = partition_arrays(ts, qs, os_, n_shards=3, seed=0)
        assert sum(len(p[0]) for p in parts) == 20
        seen = np.concatenate([p[2] for p in parts])
        assert sorted(seen.tolist()) == sorted(os_.tolist())

    def test_note_first_appearance_ranks_by_first_kept_event(self):
        ranks: dict[int, dict[int, int]] = {}
        ts = np.array([0.0, 1.0, 2.0, 3.0, 150.0])
        os_ = np.array([5, 3, 5, 9, 3], dtype=np.int64)
        note_first_appearance(ts, os_, 0.0, 100.0, ranks)
        assert ranks[0] == {5: 0, 3: 1, 9: 2}
        assert ranks[1] == {3: 0}
        # A later call extends the existing window's ordering.
        note_first_appearance(
            np.array([4.0]), np.array([7], dtype=np.int64), 0.0, 100.0, ranks
        )
        assert ranks[0][7] == 3


class TestReorderFront:
    def test_in_order_passthrough(self):
        front = ReorderFront(origin=0.0, reorder_slack=0.0)
        ts = np.array([1.0, 2.0, 3.0])
        qs = np.array([1, 2, 3], dtype=np.int64)
        os_ = np.array([1, 1, 1], dtype=np.int64)
        out_ts, out_qs, out_os = front.push(ts, qs, os_)
        assert np.array_equal(out_ts, ts)
        assert np.array_equal(out_qs, qs)
        assert front.ingested == 3 and front.late_dropped == 0

    def test_reorders_within_slack(self):
        front = ReorderFront(origin=0.0, reorder_slack=5.0)
        ts = np.array([10.0, 8.0, 11.0])
        ids = np.array([1, 2, 3], dtype=np.int64)
        out_ts, out_qs, _ = front.push(ts, ids, ids)
        released = np.concatenate([out_ts, front.flush()[0]])
        assert released.tolist() == [8.0, 10.0, 11.0]
        assert front.late_dropped == 0
        assert front.reordered >= 1

    def test_drops_beyond_slack(self):
        front = ReorderFront(origin=0.0, reorder_slack=2.0)
        ids = np.array([1, 2], dtype=np.int64)
        front.push(np.array([100.0, 50.0]), ids, ids)
        assert front.late_dropped == 1
        (ts, _, _) = front.flush()
        assert front.ingested == 2

    def test_pre_origin_dropped(self):
        front = ReorderFront(origin=1000.0, reorder_slack=0.0)
        one = np.array([1], dtype=np.int64)
        front.push(np.array([500.0]), one, one)
        assert front.late_dropped == 1


class TestBatchEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bit_identical_to_single_engine(self, n_shards):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3)
        entries = synthetic_entries()
        engine = SensorEngine(directory, config)
        expected = engine.process(entries, 0.0, 300.0, classify=False)
        with FederatedSensor(
            directory, config, n_shards=n_shards, processes=False
        ) as federated:
            merged = federated.process(entries, 0.0, 300.0, classify=False)
            assert len(merged) == len(expected) == 3
            for got, want in zip(merged, expected):
                assert (got.start, got.end) == (want.window.start, want.window.end)
                assert_windows_match(got, want)
            assert stats_snapshot(federated.accounting()) == stats_snapshot(
                engine.accounting()
            )

    def test_gap_windows_are_emitted_empty(self):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3)
        entries = [entry(5.0, querier=q, originator=1) for q in range(100, 110)]
        engine = SensorEngine(directory, config)
        expected = engine.process(entries, 0.0, 400.0, classify=False)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as federated:
            merged = federated.process(entries, 0.0, 400.0, classify=False)
        assert len(merged) == len(expected) == 4
        for got, want in zip(merged[1:], expected[1:]):
            assert len(got.features) == len(want.features) == 0
            assert got.features.context == want.features.context

    def test_shard_count_invariance(self):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3)
        entries = synthetic_entries()
        results = []
        for n_shards in (1, 2, 4):
            with FederatedSensor(
                directory, config, n_shards=n_shards, processes=False
            ) as federated:
                results.append(federated.process(entries, 0.0, 300.0, classify=False))
        for other in results[1:]:
            for got, want in zip(other, results[0]):
                assert np.array_equal(
                    got.features.originators, want.features.originators
                )
                assert np.array_equal(got.features.matrix, want.features.matrix)

    def test_sketch_mode_matches_single_engine(self):
        directory = directory_for(range(100, 140))
        config = SensorConfig(
            window_seconds=100.0,
            min_queriers=3,
            sketch_enabled=True,
            hll_precision=10,
        )
        entries = synthetic_entries()
        engine = SensorEngine(directory, config)
        expected = engine.process(entries, 0.0, 300.0, classify=False)
        with FederatedSensor(
            directory, config, n_shards=3, processes=False
        ) as federated:
            merged = federated.process(entries, 0.0, 300.0, classify=False)
            for got, want in zip(merged, expected):
                assert_windows_match(got, want)
            assert stats_snapshot(federated.accounting()) == stats_snapshot(
                engine.accounting()
            )

    def test_classify_through_adopted_trainer(self):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3, majority_runs=3)
        entries = synthetic_entries()
        trainer = SensorEngine(directory, config)
        window = trainer.process(entries, 0.0, 100.0, classify=False)[0]
        labeled = LabeledSet.from_pairs(
            (int(o), "scan" if int(o) % 2 else "dns")
            for o in window.features.originators
        )
        trainer.fit(window.features, labeled)
        expected = trainer.process(entries, 0.0, 300.0)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as federated:
            federated.fit_from(trainer)
            assert federated.is_fitted
            merged = federated.process(entries, 0.0, 300.0)
        for got, want in zip(merged, expected):
            assert got.verdicts == want.verdicts
            assert got.classification == {
                v.originator: v.app_class for v in want.verdicts
            }


class TestStreamingEquivalence:
    def _stream(self, sensor, block, chunk=400):
        windows = []
        for lo in range(0, len(block), chunk):
            sensor.ingest_block(block[lo : lo + chunk])
            windows.extend(sensor.poll(classify=False))
        windows.extend(sensor.finish(classify=False))
        return windows

    def _mildly_disordered(self, entries):
        block = EntryBlock.from_entries(entries)
        ts = block.timestamps.copy()
        rng = np.random.default_rng(3)
        ts += rng.uniform(0.0, 1.5, size=ts.shape)  # jitter within slack
        order = np.argsort(ts, kind="stable")
        # Feed in jittered order but with the original timestamps, so
        # the front genuinely has to reorder.
        return EntryBlock.from_arrays(
            block.timestamps[order], block.queriers[order], block.originators[order]
        )

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_chunked_stream_matches_single_engine(self, n_shards):
        directory = directory_for(range(100, 140))
        config = SensorConfig(
            window_seconds=100.0, min_queriers=3, reorder_slack=2.0
        )
        block = self._mildly_disordered(synthetic_entries())
        engine = SensorEngine(directory, config)
        expected = self._stream(engine, block)
        with FederatedSensor(
            directory, config, n_shards=n_shards, processes=False
        ) as federated:
            merged = self._stream(federated, block)
            assert len(merged) == len(expected) > 0
            for got, want in zip(merged, expected):
                assert (got.start, got.end) == (want.window.start, want.window.end)
                assert_windows_match(got, want)
            assert stats_snapshot(federated.accounting()) == stats_snapshot(
                engine.accounting()
            )

    def test_streaming_sketch_rows_match_modulo_order(self):
        # Documented exception: in streaming sketch mode the single
        # engine emits rows in promotion order while the federation's
        # canonical order is first appearance.  Contents still match.
        directory = directory_for(range(100, 140))
        config = SensorConfig(
            window_seconds=100.0,
            min_queriers=3,
            sketch_enabled=True,
            hll_precision=10,
        )
        block = EntryBlock.from_entries(synthetic_entries())
        engine = SensorEngine(directory, config)
        expected = self._stream(engine, block)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as federated:
            merged = self._stream(federated, block)
        assert len(merged) == len(expected)
        for got, want in zip(merged, expected):
            want_rows = {
                int(o): want.features.matrix[i]
                for i, o in enumerate(want.features.originators)
            }
            got_rows = {
                int(o): got.features.matrix[i]
                for i, o in enumerate(got.features.originators)
            }
            assert set(got_rows) == set(want_rows)
            for o, row in got_rows.items():
                assert np.array_equal(row, want_rows[o])

    @pytest.mark.parametrize("chunk", [1, 7, 400])
    def test_streaming_sketch_vectorized_chunks_match_scalar_feed(self, chunk):
        # Shards inherit the pre-stage's array-native verdict path via
        # ingest_arrays; any chunk split must promote the same rows as a
        # per-entry scalar feed of a single engine.  (Row *order* differs
        # by the documented promotion-vs-first-appearance exception.)
        directory = directory_for(range(100, 140))
        config = SensorConfig(
            window_seconds=100.0,
            min_queriers=3,
            sketch_enabled=True,
            hll_precision=10,
        )
        entries = synthetic_entries()
        engine = SensorEngine(directory, config)
        for e in entries:
            engine.ingest(e)
        expected = engine.poll(classify=False) + engine.finish(classify=False)
        block = EntryBlock.from_entries(entries)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as federated:
            merged = self._stream(federated, block, chunk=chunk)
        assert len(merged) == len(expected) > 0
        for got, want in zip(merged, expected):
            want_rows = {
                int(o): want.features.matrix[i]
                for i, o in enumerate(want.features.originators)
            }
            got_rows = {
                int(o): got.features.matrix[i]
                for i, o in enumerate(got.features.originators)
            }
            assert set(got_rows) == set(want_rows)
            for o, row in got_rows.items():
                assert np.array_equal(row, want_rows[o])
            assert got.features.context == want.features.context


class TestStreamingProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=290.0, allow_nan=False),
                st.integers(100, 139),
                st.integers(1, 6),
            ),
            max_size=60,
        )
    )
    def test_random_streams_match_single_engine(self, raw):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=2)
        entries = [entry(t, q, o) for t, q, o in sorted(raw, key=lambda r: r[0])]
        block = EntryBlock.from_entries(entries)
        engine = SensorEngine(directory, config)
        engine.ingest_block(block)
        expected = engine.poll(classify=False) + engine.finish(classify=False)
        with FederatedSensor(
            directory, config, n_shards=3, processes=False
        ) as federated:
            federated.ingest_block(block)
            merged = federated.poll(classify=False) + federated.finish(
                classify=False
            )
        assert len(merged) == len(expected)
        for got, want in zip(merged, expected):
            assert_windows_match(got, want)


class TestProcessPool:
    def test_fork_pool_matches_inline(self):
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3)
        entries = synthetic_entries(windows=1)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as inline:
            expected = inline.process(entries, 0.0, 100.0, classify=False)
        with FederatedSensor(
            directory, config, n_shards=2, processes=True
        ) as forked:
            merged = forked.process(entries, 0.0, 100.0, classify=False)
        for got, want in zip(merged, expected):
            assert np.array_equal(got.features.matrix, want.features.matrix)
            assert np.array_equal(
                got.features.originators, want.features.originators
            )

    def test_telemetry_instruments_emitted(self):
        registry = MetricsRegistry()
        directory = directory_for(range(100, 140))
        config = SensorConfig(window_seconds=100.0, min_queriers=3)
        with FederatedSensor(
            directory, config, n_shards=2, processes=False, registry=registry
        ) as federated:
            federated.process(synthetic_entries(windows=1), 0.0, 100.0)
            federated.accounting()
        names = set(registry.names())
        assert "repro_federation_blocks_total" in names
        assert "repro_federation_events_total" in names
        assert "repro_federation_windows_total" in names
        assert "repro_federation_rows_total" in names
        assert "repro_stage_items_total" in names

    def test_invalid_construction(self):
        directory = directory_for(range(100, 102))
        with pytest.raises(ValueError):
            FederatedSensor(directory, n_shards=0)
        with pytest.raises(ValueError):
            FederatedSensor(None)


class TestVerdictFusion:
    def test_footprint_weighted_majority(self):
        fused = fuse_verdicts(
            {
                "JP-DNS": [ClassifiedOriginator(9, "scan", 40)],
                "B-Root": [ClassifiedOriginator(9, "dns", 4)],
                "M-Root": [ClassifiedOriginator(9, "dns", 5)],
            }
        )
        assert len(fused) == 1
        top = fused[0]
        assert isinstance(top, FusedOriginator)
        assert top.app_class == "scan"  # 40 outweighs 4 + 5
        assert top.footprint == 40
        assert top.vantages == ("B-Root", "JP-DNS", "M-Root")
        assert top.agreement is False
        assert top.verdicts == {"JP-DNS": "scan", "B-Root": "dns", "M-Root": "dns"}

    def test_tie_breaks_lexicographically(self):
        fused = fuse_verdicts(
            {
                "a": [ClassifiedOriginator(1, "spam", 10)],
                "b": [ClassifiedOriginator(1, "scan", 10)],
            }
        )
        assert fused[0].app_class == "scan"

    def test_sorted_by_footprint_then_originator(self):
        fused = fuse_verdicts(
            {
                "a": [
                    ClassifiedOriginator(3, "scan", 5),
                    ClassifiedOriginator(1, "dns", 50),
                    ClassifiedOriginator(2, "mail", 5),
                ]
            }
        )
        assert [f.originator for f in fused] == [1, 2, 3]

    def test_single_vantage_degenerates_to_identity(self):
        verdicts = [ClassifiedOriginator(7, "cdn", 12)]
        fused = fuse_verdicts({"only": verdicts})
        assert fused[0].app_class == "cdn"
        assert fused[0].agreement is True
        assert fused[0].footprints == {"only": 12}


class TestCrossVantageFusion:
    @pytest.fixture(scope="class")
    def bundle(self):
        from repro.datasets import VantageSpec, generate_multi_vantage, spec_for

        spec = spec_for("B-post-ditl", "tiny")
        return generate_multi_vantage(
            spec,
            [
                VantageSpec(name="JP-DNS", kind="national", country="jp", sites=2),
                VantageSpec(name="B-Root", kind="root", root_letter="b"),
            ],
        )

    def test_one_simulation_feeds_every_vantage(self, bundle):
        assert set(bundle.sensors) == {"JP-DNS", "B-Root"}
        lengths = {name: len(a.log.block()) for name, a in bundle.sensors.items()}
        assert all(n > 0 for n in lengths.values())
        # The national sensor sits below most caching; the root behind
        # nearly-complete caching — attenuation must differ.
        assert lengths["JP-DNS"] != lengths["B-Root"]

    def test_fused_verdicts_across_attenuated_views(self, bundle):
        directory = bundle.directory()
        truth = bundle.true_classes()
        config = SensorConfig(
            window_seconds=bundle.duration_seconds,
            min_queriers=3,
            majority_runs=3,
        )
        per_vantage: dict[str, list[ClassifiedOriginator]] = {}
        for name, authority in bundle.sensors.items():
            engine = SensorEngine(directory, config)
            window = engine.process(
                authority.log.block(), 0.0, bundle.duration_seconds, classify=False
            )[0]
            features = window.features
            labeled = LabeledSet.from_pairs(
                (int(o), truth[int(o)])
                for o in features.originators
                if int(o) in truth
            )
            if len(labeled) < 4 or len(labeled.classes_present()) < 2:
                pytest.skip("tiny preset produced too few analyzable rows")
            engine.fit(features, labeled)
            per_vantage[name] = engine.classify(features)
        fused = fuse_verdicts(per_vantage)
        assert fused
        by_origin = {f.originator: f for f in fused}
        multi = [f for f in fused if len(f.vantages) == 2]
        assert multi, "vantages share no originators — fusion untested"
        for f in fused:
            assert f.footprint == max(f.footprints.values())
            assert set(f.footprints) <= {"JP-DNS", "B-Root"}
            assert isinstance(f.agreement, bool)
        # Fusing a vantage with itself changes nothing.
        solo = fuse_verdicts({"JP-DNS": per_vantage["JP-DNS"]})
        for f in solo:
            assert f.app_class == next(
                v.app_class
                for v in per_vantage["JP-DNS"]
                if v.originator == f.originator
            )
        assert len(by_origin) == len(fused)
