"""Vectorized streaming sketch == scalar streaming sketch.

Property suite for the array-native ``SketchPreStage.observe_arrays``
path (vectorized dedup + two-tier promotion resolver) and the collector
plumbing above it: verdict sequence, promoted set, roster, dedup/defer
counters, and emitted window contents must match the per-event
``observe()`` path exactly, for any chunk split — including chunks that
straddle window boundaries and reorder-slack replays.  Also pins the
satellites that ride along: the gate-cache fix (a DUPLICATE verdict no
longer invalidates the cached gate), the ``HllBank`` batched
subset-estimate / snapshot helpers the resolver is built on, and the
resolver's wholesale-vs-replayed accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock
from repro.sensor.streaming import StreamingCollector
from repro.sketch.hll import HllBank
from repro.sketch.prestage import (
    DEFER_CODE,
    DUPLICATE,
    KEEP_CODE,
    VERDICT_NAMES,
    SketchParams,
    SketchPreStage,
)


def make_entries(rows):
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in rows]


def params_for(promote: int, precision: int = 6, dedup: float = 30.0) -> SketchParams:
    return SketchParams(
        width=64,
        depth=2,
        hll_precision=precision,
        capacity=4096,
        gate_queriers=max(promote, 4),
        promote_queriers=promote,
        dedup_seconds=dedup,
    )


def prestage_signature(p: SketchPreStage):
    """Everything the collector and the gate consume from a pre-stage."""
    keys, estimates = p.uniques.estimate_all()
    return (
        p.events_unique,
        p.events_duplicate,
        p.events_deferred,
        tuple(sorted(p._promoted)),
        tuple(p.roster_array().tolist()),
        tuple(keys.tolist()),
        tuple(estimates.tolist()),
    )


def window_signature(window):
    """Observation contents + dict order + the attached sketch state."""
    p = window.prestage
    return (
        window.start,
        window.end,
        [
            (originator, tuple(obs.timestamps), tuple(obs.queriers))
            for originator, obs in window.observations.items()
        ],
        None if p is None else prestage_signature(p),
        None
        if window.querier_roster is None
        else tuple(window.querier_roster.tolist()),
    )


def stats_signature(stats):
    return (
        stats.ingested,
        stats.deduplicated,
        stats.late_dropped,
        stats.reordered,
        stats.windows_emitted,
    )


# Coarse timestamps force shared 30 s dedup buckets; tiny id spaces force
# repeated (originator, querier) events — the adversarial regime for the
# Bloom dedup and for promotions landing mid-chunk.
events_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0).map(lambda t: round(t, 1)),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=60,
)


class TestObserveArraysEquivalence:
    @given(
        events_strategy,
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=1, max_value=9),
        st.sampled_from([4, 6]),
        st.sampled_from([0.0, 30.0]),
    )
    @settings(max_examples=150, deadline=None)
    def test_verdict_sequence_matches_scalar(
        self, events, promote, chunk, precision, dedup
    ):
        """The load-bearing tentpole property: identical verdicts, state,
        and counters for any chunk split, promote bar, and precision —
        including tiny precisions where the HLL estimator's
        linear-counting/raw switch is most erratic."""
        params = params_for(promote, precision=precision, dedup=dedup)
        scalar = SketchPreStage(params)
        verdicts = [scalar.observe(t, q, o) for t, q, o in events]

        vec = SketchPreStage(params)
        ts = np.array([e[0] for e in events], dtype=np.float64)
        qs = np.array([e[1] for e in events], dtype=np.int64)
        os_ = np.array([e[2] for e in events], dtype=np.int64)
        codes: list[int] = []
        for lo in range(0, len(events), chunk):
            got, kept = vec.observe_arrays(
                ts[lo : lo + chunk], qs[lo : lo + chunk], os_[lo : lo + chunk]
            )
            assert np.array_equal(kept, np.flatnonzero(got == KEEP_CODE))
            codes.extend(got.tolist())

        assert [VERDICT_NAMES[c] for c in codes] == verdicts
        assert prestage_signature(vec) == prestage_signature(scalar)

    def test_resolver_settles_every_originator_chunk_group(self):
        rng = np.random.default_rng(11)
        n = 500
        ts = np.sort(rng.uniform(0.0, 400.0, n))
        qs = rng.integers(0, 30, n)
        os_ = rng.integers(0, 6, n)
        p = SketchPreStage(params_for(4))
        groups = 0
        for lo in range(0, n, 50):
            hi = min(lo + 50, n)
            codes, kept = p.observe_arrays(ts[lo:hi], qs[lo:hi], os_[lo:hi])
            groups += len(np.unique(os_[lo:hi][kept]))
        # Every (originator, chunk) group with kept events is resolved
        # exactly once, by exactly one tier.
        assert p.resolver_wholesale + p.resolver_replayed == groups

    def test_wholesale_vs_replayed_split(self):
        p = SketchPreStage(params_for(2))
        # Chunk 1: originator 7 sees 5 distinct queriers — it must cross
        # the bar inside the chunk, so it is replayed, not settled.
        codes, _ = p.observe_arrays(
            np.arange(5) * 40.0, np.arange(5, dtype=np.int64), np.full(5, 7)
        )
        assert p.resolver_replayed == 1 and p.resolver_wholesale == 0
        assert VERDICT_NAMES[codes[-1]] != DUPLICATE
        assert p.is_promoted(7)
        # Chunk 2: 7 is promoted (wholesale KEEP) and originator 8 sees a
        # single querier (provably below the bar — wholesale DEFER).
        codes, kept = p.observe_arrays(
            np.array([300.0, 340.0]),
            np.array([50, 60], dtype=np.int64),
            np.array([7, 8], dtype=np.int64),
        )
        assert p.resolver_wholesale == 2 and p.resolver_replayed == 1
        assert codes.tolist() == [KEEP_CODE, DEFER_CODE]
        assert not p.is_promoted(8)

    def test_empty_and_all_duplicate_chunks(self):
        p = SketchPreStage(params_for(4))
        codes, kept = p.observe_arrays(
            np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert codes.size == 0 and kept.size == 0
        p.observe(10.0, 1, 2)
        before = prestage_signature(p)
        codes, kept = p.observe_arrays(
            np.array([11.0, 12.0]),
            np.array([1, 1], dtype=np.int64),
            np.array([2, 2], dtype=np.int64),
        )
        assert [VERDICT_NAMES[c] for c in codes] == [DUPLICATE, DUPLICATE]
        assert kept.size == 0
        # Only the duplicate counter moved.
        assert p.events_duplicate == 2
        after = prestage_signature(p)
        assert (after[0],) + after[2:] == (before[0],) + before[2:]


class TestGateCacheFix:
    def test_duplicate_preserves_gate_cache(self):
        """Satellite regression: observe() used to invalidate the cached
        gate before the Bloom duplicate check, so duplicate storms forced
        a full estimate_all sweep per survivors() call."""
        p = SketchPreStage(params_for(1))
        p.observe(0.0, 1, 9)
        p.survivors()  # warm the cache
        assert p._gate_cache is not None
        assert p.observe(1.0, 1, 9) == DUPLICATE  # same 30 s bucket
        assert p._gate_cache is not None
        # A non-duplicate event does invalidate.
        assert p.observe(2.0, 2, 9) != DUPLICATE
        assert p._gate_cache is None


class TestHllBankSubsetOps:
    def _populated_bank(self, n_keys: int = 40) -> HllBank:
        rng = np.random.default_rng(5)
        bank = HllBank(precision=5, seed=3)
        bank.add_batch(
            rng.integers(0, n_keys, 2000), rng.integers(0, 500, 2000)
        )
        return bank

    def test_estimate_many_matches_estimate(self):
        bank = self._populated_bank()
        keys = np.array([0, 7, 39, 1000, 13, -5], dtype=np.int64)  # incl. unseen
        got = bank.estimate_many(keys)
        want = np.array([bank.estimate(int(k)) for k in keys])
        assert np.array_equal(got, want)

    def test_estimate_many_zero_counts(self):
        bank = self._populated_bank()
        keys = np.array([3, 999_999], dtype=np.int64)
        estimates, zeros = bank.estimate_many(keys, with_zeros=True)
        assert estimates[0] == bank.estimate(3)
        assert zeros[0] == int((bank.extract(3).registers == 0).sum())
        # Unseen key: estimate 0, all m registers zero.
        assert estimates[1] == 0.0 and zeros[1] == bank.extract(999_999).m

    def test_estimate_many_spans_row_chunks(self):
        bank = HllBank(precision=4, seed=1)
        n = HllBank._CHUNK_ROWS + 123
        keys = np.arange(n, dtype=np.int64)
        bank.add_batch(keys, keys * 31 + 7)
        got = bank.estimate_many(keys)
        _, want = bank.estimate_all()
        assert np.array_equal(got, want)

    def test_snapshot_restore_roundtrip(self):
        bank = self._populated_bank()
        keys = np.array([2, 11, 29], dtype=np.int64)
        snapshot = bank.snapshot_rows(keys)
        untouched = bank.extract(5)
        bank.add_batch(
            np.repeat(keys, 50), np.arange(150, dtype=np.int64) + 10_000
        )
        bank.restore_rows(keys, snapshot)
        for i, key in enumerate(keys):
            assert np.array_equal(bank.extract(int(key)).registers, snapshot[i])
        assert bank.extract(5) == untouched

    def test_snapshot_is_a_copy_not_a_view(self):
        bank = self._populated_bank()
        keys = np.array([1, 2], dtype=np.int64)
        snapshot = bank.snapshot_rows(keys)
        frozen = snapshot.copy()
        bank.add_batch(np.repeat(keys, 40), np.arange(80, dtype=np.int64) + 90_000)
        assert np.array_equal(snapshot, frozen)

    def test_ensure_keys_pins_insertion_order(self):
        bank = HllBank(precision=4, seed=0)
        bank.ensure_keys(np.array([5, 3, 9], dtype=np.int64))
        bank.add_batch(
            np.array([9, 3], dtype=np.int64), np.array([1, 2], dtype=np.int64)
        )
        keys, _ = bank.estimate_all()
        assert keys.tolist() == [5, 3, 9]


# Streaming-collector strategy: 20 s windows over a 90 s span, so chunks
# straddle window boundaries; slack > 0 exercises reorder-buffer replays
# through the sketched path.
rows_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=90.0).map(lambda t: round(t, 1)),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=50,
)


class TestStreamingCollectorSketchEquivalence:
    def _collector(self, slack: float, promote: int) -> StreamingCollector:
        return StreamingCollector(
            20.0,
            reorder_slack=slack,
            prestage_factory=lambda: SketchPreStage(params_for(promote)),
        )

    @given(
        rows_strategy,
        st.sampled_from([0.0, 2.0, 5.0]),
        st.integers(min_value=1, max_value=7),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunked_sketch_block_matches_per_entry(
        self, rows, slack, chunk, promote
    ):
        """Same sketched stream (disorder, late drops, boundary straddles
        and all) fed per entry vs in chunks — windows, attached pre-stage
        state, rosters, and stats must all match."""
        entries = make_entries(rows)
        scalar = self._collector(slack, promote)
        for entry in entries:
            scalar.ingest(entry)
        scalar_windows = scalar.completed_windows() + scalar.flush()

        block = self._collector(slack, promote)
        for lo in range(0, len(entries), chunk):
            block.ingest_block(EntryBlock.from_entries(entries[lo : lo + chunk]))
        block_windows = block.completed_windows() + block.flush()

        assert [window_signature(w) for w in block_windows] == [
            window_signature(w) for w in scalar_windows
        ]
        assert stats_signature(block.stats) == stats_signature(scalar.stats)

    @given(rows_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=75, deadline=None)
    def test_interleaving_scalar_and_block_sketch_ingest(self, rows, chunk):
        """The two ingest forms share one sketched state machine."""
        entries = make_entries(rows)
        reference = self._collector(2.0, 2)
        for entry in entries:
            reference.ingest(entry)
        mixed = self._collector(2.0, 2)
        scalar_turn = True
        for lo in range(0, len(entries), chunk):
            part = entries[lo : lo + chunk]
            if scalar_turn:
                for entry in part:
                    mixed.ingest(entry)
            else:
                mixed.ingest_block(EntryBlock.from_entries(part))
            scalar_turn = not scalar_turn
        assert [window_signature(w) for w in mixed.flush()] == [
            window_signature(w) for w in reference.flush()
        ]
        assert stats_signature(mixed.stats) == stats_signature(reference.stats)

    @pytest.mark.parametrize("chunk", [1, 3, 1000])
    def test_dense_promoting_stream(self, chunk):
        """A deterministic dense log where many originators promote: the
        block path must reproduce promotion-order materialization."""
        rng = np.random.default_rng(9)
        n = 3000
        rows = sorted(
            zip(
                (rng.random(n) * 90.0).round(1).tolist(),
                rng.integers(0, 40, n).tolist(),
                rng.integers(0, 8, n).tolist(),
            )
        )
        entries = make_entries(rows)
        scalar = self._collector(0.0, 4)
        for entry in entries:
            scalar.ingest(entry)
        scalar_windows = scalar.flush()
        block = self._collector(0.0, 4)
        for lo in range(0, len(entries), chunk):
            block.ingest_block(EntryBlock.from_entries(entries[lo : lo + chunk]))
        block_windows = block.flush()
        assert [window_signature(w) for w in block_windows] == [
            window_signature(w) for w in scalar_windows
        ]
        final = block_windows[-1].prestage
        assert final is not None and final.resolver_replayed > 0
        if chunk < 1000:
            # With multiple chunks per window, later chunks see already-
            # promoted originators and settle them wholesale.
            assert final.resolver_wholesale > 0
