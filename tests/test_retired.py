"""Tests for the retired-service detection experiment (§ VI-B)."""

from __future__ import annotations

import pytest

from repro.analysis.retired import RetiredService, retirement_experiment


class TestRetiredService:
    def test_weeks_visible_after_retirement(self):
        service = RetiredService(
            originator=1, app_class="dns", retired_day=14.0,
            weekly_footprints=(100, 100, 80, 40, 15, 5),
        )
        # Retired at week 2; weeks 2 and 3 are >= 10.
        assert service.weeks_visible_after_retirement(threshold=10) == 3

    def test_decay_detection(self):
        decaying = RetiredService(
            originator=1, app_class="dns", retired_day=7.0,
            weekly_footprints=(100, 90, 70, 50, 30),
        )
        steady = RetiredService(
            originator=2, app_class="dns", retired_day=7.0,
            weekly_footprints=(100, 100, 100, 101, 100),
        )
        assert decaying.decays_after_retirement()
        assert not steady.decays_after_retirement()

    def test_short_tail_not_decaying(self):
        service = RetiredService(
            originator=1, app_class="dns", retired_day=21.0,
            weekly_footprints=(100, 100, 100, 50),
        )
        assert not service.decays_after_retirement()


class TestRetirementExperiment:
    @pytest.fixture(scope="class")
    def study(self, small_world):
        return retirement_experiment(
            small_world,
            n_services=2,
            duration_days=56.0,
            retired_day=14.0,
            initial_audience=250,
            seed=5,
        )

    def test_services_tracked(self, study):
        assert len(study.services) == 2
        for service in study.services:
            assert len(service.weekly_footprints) == 8

    def test_visible_and_decaying(self, study):
        for service in study.services:
            assert service.weeks_visible_after_retirement(threshold=10) >= 3
            assert service.decays_after_retirement()

    def test_full_strength_before_retirement(self, study):
        for service in study.services:
            before = service.weekly_footprints[:2]
            after_tail = service.weekly_footprints[-1]
            assert min(before) > after_tail
