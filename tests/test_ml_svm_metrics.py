"""Tests for the SMO kernel SVM, metrics, and validation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    BinarySvm,
    DecisionTreeClassifier,
    LabelEncoder,
    RandomForestClassifier,
    SvmClassifier,
    SvmConfig,
    confusion_matrix,
    evaluate,
    majority_vote_predict,
    repeated_holdout,
    train_test_split,
)


def blobs(seed=0, n=40, classes=3, features=4, spread=4.0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(loc=c * spread, scale=1.0, size=(n, features)) for c in range(classes)]
    )
    y = np.repeat(np.arange(classes), n)
    return X, y


class TestBinarySvm:
    def test_separates_linear_data(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-3, 1, (40, 2)), rng.normal(3, 1, (40, 2))])
        y = np.concatenate([-np.ones(40), np.ones(40)])
        svm = BinarySvm(SvmConfig(kernel="linear", C=1.0)).fit(X, y)
        assert (svm.predict(X) == y).mean() > 0.97

    def test_rbf_separates_circles(self):
        # Radially separable data defeats a linear kernel; RBF must win.
        rng = np.random.default_rng(1)
        angles = rng.uniform(0, 2 * np.pi, 120)
        radii = np.concatenate([rng.uniform(0, 1, 60), rng.uniform(3, 4, 60)])
        X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        y = np.concatenate([-np.ones(60), np.ones(60)])
        rbf = BinarySvm(SvmConfig(kernel="rbf", gamma=0.5)).fit(X, y)
        assert (rbf.predict(X) == y).mean() > 0.95

    def test_support_vectors_subset(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(-5, 1, (50, 3)), rng.normal(5, 1, (50, 3))])
        y = np.concatenate([-np.ones(50), np.ones(50)])
        svm = BinarySvm(SvmConfig(kernel="linear")).fit(X, y)
        # A widely separated problem needs few support vectors.
        assert 0 < svm.n_support < 50

    def test_decision_sign_matches_predict(self):
        X, _ = blobs(classes=2, n=20)
        y = np.concatenate([-np.ones(20), np.ones(20)])
        svm = BinarySvm(SvmConfig()).fit(X, y)
        scores = svm.decision_function(X)
        assert (np.sign(scores) == svm.predict(X)).all() or (
            (scores == 0) | (np.sign(scores) == svm.predict(X))
        ).all()

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            BinarySvm(SvmConfig()).fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            BinarySvm(SvmConfig(kernel="poly"))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BinarySvm(SvmConfig()).decision_function(np.zeros((1, 2)))


class TestSvmClassifier:
    def test_multiclass_blobs(self):
        X, y = blobs(seed=3)
        Xt, yt = blobs(seed=4)
        svm = SvmClassifier(seed=0).fit(X, y)
        assert (svm.predict(Xt) == yt).mean() > 0.9

    def test_standardization_handles_scale_mismatch(self):
        X, y = blobs(seed=5, features=2)
        X = X * np.array([1000.0, 0.001])  # wildly different scales
        svm = SvmClassifier(seed=0).fit(X, y)
        assert (svm.predict(X) == y).mean() > 0.9

    def test_constant_feature_no_nan(self):
        X, y = blobs(seed=6, features=3)
        X[:, 1] = 7.0
        svm = SvmClassifier(seed=0).fit(X, y)
        assert np.isfinite(svm.predict_proba(X)).all()

    def test_proba_normalized(self):
        X, y = blobs(n=20)
        proba = SvmClassifier(seed=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SvmClassifier().predict(np.zeros((1, 2)))


class TestMetrics:
    def test_confusion_matrix_counts(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 0]), 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 1 and matrix[2, 0] == 1
        assert matrix.sum() == 4

    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1, 0])
        report = evaluate(y, y, 3)
        assert report.accuracy == 1.0
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_paper_formulas_on_binary_example(self):
        # tp=2 fp=1 fn=1 tn=1 for class 1.
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0])
        report = evaluate(y_true, y_pred, 2)
        class1 = report.per_class[1]
        assert class1.precision == pytest.approx(2 / 3)
        assert class1.recall == pytest.approx(2 / 3)
        assert class1.f1 == pytest.approx(2 * 2 / (2 * 2 + 1 + 1))
        assert report.accuracy == pytest.approx(3 / 5)

    def test_macro_ignores_unsupported_classes(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 1])
        report = evaluate(y_true, y_pred, 5)  # classes 2-4 unseen
        assert report.precision == 1.0

    def test_f1_between_precision_and_recall_bounds(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        report = evaluate(y_true, y_pred, 3)
        for m in report.per_class:
            if m.support:
                assert min(m.precision, m.recall) - 1e-12 <= m.f1 <= max(m.precision, m.recall) + 1e-12

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 3]), np.array([0, 0]), 3)

    def test_as_row_keys(self):
        y = np.array([0, 1])
        row = evaluate(y, y, 2).as_row()
        assert set(row) == {"accuracy", "precision", "recall", "f1"}


class TestValidation:
    def test_label_encoder_roundtrip(self):
        enc = LabelEncoder(["spam", "scan", "mail"])
        labels = enc.encode(["mail", "spam"])
        assert enc.decode(labels) == ["mail", "spam"]
        assert "scan" in enc and len(enc) == 3
        with pytest.raises(ValueError):
            enc.encode(["bogus"])

    def test_split_partitions_indices(self):
        rng = np.random.default_rng(0)
        train, test = train_test_split(100, 0.6, rng)
        combined = np.sort(np.concatenate([train, test]))
        assert (combined == np.arange(100)).all()

    def test_stratified_keeps_rare_class_in_train(self):
        rng = np.random.default_rng(0)
        y = np.array([0] * 50 + [1] * 2)
        for _ in range(20):
            train, _test = train_test_split(len(y), 0.6, rng, stratify=y)
            assert (y[train] == 1).any()

    def test_stratified_rare_class_not_swallowed_entirely(self):
        rng = np.random.default_rng(0)
        y = np.array([0] * 50 + [1] * 2)
        train, test = train_test_split(len(y), 0.6, rng, stratify=y)
        assert (y[test] == 1).any() or (y[train] == 1).sum() == 1

    def test_bad_fraction_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            train_test_split(10, 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0, rng)

    def test_repeated_holdout_statistics(self):
        X, y = blobs(seed=7, spread=8.0)
        summary = repeated_holdout(
            lambda s: DecisionTreeClassifier(rng=np.random.default_rng(s)),
            X, y, 3, repeats=8, seed=0,
        )
        assert summary.repeats == 8
        assert summary.accuracy_mean > 0.9
        assert summary.accuracy_std < 0.2

    def test_majority_vote_is_deterministic(self):
        X, y = blobs(seed=8, n=25)
        votes1 = majority_vote_predict(
            lambda s: RandomForestClassifier(seed=s), X, y, X, runs=5, seed=3
        )
        votes2 = majority_vote_predict(
            lambda s: RandomForestClassifier(seed=s), X, y, X, runs=5, seed=3
        )
        assert (votes1 == votes2).all()
        assert (votes1 == y).mean() > 0.9


class TestSvmLabelGaps:
    def test_fit_with_absent_middle_class(self):
        # Labels {0, 2} with class 1 absent: one-vs-one must only build
        # machines for present pairs and still predict valid labels.
        rng = np.random.default_rng(11)
        X = np.vstack([rng.normal(-3, 1, (20, 3)), rng.normal(3, 1, (20, 3))])
        y = np.concatenate([np.zeros(20, dtype=int), np.full(20, 2, dtype=int)])
        svm = SvmClassifier(seed=0).fit(X, y)
        predictions = svm.predict(X)
        assert set(predictions.tolist()) <= {0, 2}
        assert (predictions == y).mean() > 0.9

    def test_single_class_training(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.zeros(10, dtype=int)
        svm = SvmClassifier(seed=0).fit(X, y)
        proba = svm.predict_proba(X)
        # No pairs -> uniform fallback votes, but still well-formed.
        assert proba.shape == (10, 1) or np.allclose(proba.sum(axis=1), 1.0)


class TestMetricsIdentities:
    def test_micro_precision_equals_accuracy(self):
        # Single-label multiclass: sum(tp) / total == accuracy.
        rng = np.random.default_rng(1)
        y_true = rng.integers(0, 4, 200)
        y_pred = rng.integers(0, 4, 200)
        report = evaluate(y_true, y_pred, 4)
        micro_tp = sum(m.tp for m in report.per_class)
        assert micro_tp / len(y_true) == pytest.approx(report.accuracy)

    def test_confusion_row_sums_are_class_supports(self):
        rng = np.random.default_rng(2)
        y_true = rng.integers(0, 3, 150)
        y_pred = rng.integers(0, 3, 150)
        matrix = confusion_matrix(y_true, y_pred, 3)
        for c in range(3):
            assert matrix[c].sum() == (y_true == c).sum()

    def test_per_class_counts_consistent(self):
        rng = np.random.default_rng(3)
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        report = evaluate(y_true, y_pred, 3)
        for m in report.per_class:
            assert m.tp + m.fp + m.fn + m.tn == 100
