"""Shared fixtures: a small world and hierarchy reused across test modules.

World construction is the most expensive fixture, so it is session-scoped;
tests must not mutate it (allocate addresses through function-scoped RNGs
is fine — allocation only grows internal sets and cannot invalidate other
tests' queriers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy
from repro.netmodel import World, WorldConfig


@pytest.fixture(scope="session")
def small_world() -> World:
    """A reduced world: fast to build, still has every role and country."""
    return World(WorldConfig(seed=42, scale=0.4))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def hierarchy(small_world: World) -> DnsHierarchy:
    """A fresh hierarchy per test, with b/m roots and a JP national sensor."""
    h = DnsHierarchy(small_world, seed=99)
    h.attach_root(Authority(name="b-root", level=AuthorityLevel.ROOT, root_letter="b"))
    h.attach_root(
        Authority(name="m-root", level=AuthorityLevel.ROOT, root_letter="m", sites=7)
    )
    h.attach_national(
        Authority(
            name="jp-dns",
            level=AuthorityLevel.NATIONAL,
            country="jp",
            scope_slash8=frozenset(small_world.geo.blocks_of("jp")),
        )
    )
    return h
