"""Tests for zones, resolvers, authorities, and hierarchy routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnssim import (
    Authority,
    AuthorityLevel,
    DnsHierarchy,
    PtrRecordSpec,
    RCode,
    ResolverConfig,
    ReverseZoneDb,
)
from repro.netmodel import QuerierRole


class TestReverseZoneDb:
    def test_unregistered_is_nxdomain(self):
        db = ReverseZoneDb()
        response = db.resolve(0x01020304)
        assert response.rcode is RCode.NXDOMAIN
        assert response.name is None

    def test_registered_name(self):
        db = ReverseZoneDb()
        db.register(0x01020304, PtrRecordSpec(ttl=60.0, name="spam.bad.jp"))
        response = db.resolve(0x01020304)
        assert response.ok and response.name == "spam.bad.jp"
        assert response.ttl == 60.0

    def test_unreachable_is_servfail(self):
        db = ReverseZoneDb()
        db.register(5, PtrRecordSpec(reachable=False))
        assert db.resolve(5).rcode is RCode.SERVFAIL

    def test_no_name_is_nxdomain_with_negative_ttl(self):
        db = ReverseZoneDb()
        db.register(5, PtrRecordSpec(has_name=False, negative_ttl=120.0))
        response = db.resolve(5)
        assert response.rcode is RCode.NXDOMAIN
        assert response.ttl == 120.0

    def test_default_name_synthesized(self):
        db = ReverseZoneDb()
        db.register(0x01020304, PtrRecordSpec(ttl=60.0))
        assert "1-2-3-4" in db.resolve(0x01020304).name


class TestAuthority:
    def test_sampling_logs_every_nth(self):
        authority = Authority(name="m", level=AuthorityLevel.ROOT, root_letter="m", sampling=10)
        for i in range(100):
            authority.observe(float(i), querier=1, originator=2)
        assert authority.seen_reverse == 100
        assert len(authority.log) == 10

    def test_scope_covers(self):
        national = Authority(
            name="jp",
            level=AuthorityLevel.NATIONAL,
            country="jp",
            scope_slash8=frozenset({133}),
        )
        assert national.covers(133 << 24)
        assert not national.covers(8 << 24)

    def test_root_covers_everything(self):
        root = Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
        assert root.covers(0) and root.covers(0xFFFFFFFF)

    def test_reset(self):
        authority = Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
        authority.observe(0.0, 1, 2)
        authority.reset()
        assert len(authority.log) == 0 and authority.seen_reverse == 0

    def test_log_between(self):
        authority = Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
        for t in (0.0, 10.0, 20.0):
            authority.observe(t, 1, 2)
        assert len(authority.log.between(5.0, 20.0)) == 1


def _one_querier(world, role=QuerierRole.MAIL):
    index = world.indices_for_role(role)[0]
    return world.queriers[index]


class TestResolutionPath:
    def test_ptr_cache_suppresses_repeat(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng)
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=3600.0))
        querier = _one_querier(small_world)
        hierarchy.resolve_ptr(querier, orig, now=0.0)
        before = hierarchy.stats.final_queries
        hierarchy.resolve_ptr(querier, orig, now=10.0)
        assert hierarchy.stats.final_queries == before
        assert hierarchy.stats.ptr_cache_hits == 1

    def test_ttl_expiry_requeries(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng)
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=100.0))
        querier = _one_querier(small_world)
        hierarchy.resolve_ptr(querier, orig, now=0.0)
        hierarchy.resolve_ptr(querier, orig, now=200.0)
        assert hierarchy.stats.final_queries == 2

    def test_zero_ttl_always_reaches_final(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng)
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=0.0))
        final = hierarchy.attach_final(
            frozenset({orig}),
            Authority(name="final", level=AuthorityLevel.FINAL,
                      scope_slash8=frozenset({orig >> 24})),
        )
        querier = _one_querier(small_world)
        for t in range(5):
            hierarchy.resolve_ptr(querier, orig, now=float(t))
        assert len(final.log) == 5

    def test_final_superset_of_root_and_national(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng, country="jp")
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=30.0))
        final = hierarchy.attach_final(
            frozenset({orig}),
            Authority(name="final", level=AuthorityLevel.FINAL,
                      scope_slash8=frozenset({orig >> 24})),
        )
        queriers = small_world.sample_queriers(
            rng, 500, {QuerierRole.MAIL: 0.5, QuerierRole.NS: 0.25, QuerierRole.HOME: 0.25}
        )
        for i, querier in enumerate(queriers):
            hierarchy.resolve_ptr(querier, orig, now=float(i))
        final_queriers = {e.querier for e in final.log}
        for sensor in hierarchy.all_sensors():
            assert {e.querier for e in sensor.log} <= final_queriers

    def test_attenuation_ordering(self, small_world, hierarchy, rng):
        # final >= national >= roots: caching filters more higher up.
        orig = small_world.allocate_originator(rng, country="jp")
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=30.0))
        final = hierarchy.attach_final(
            frozenset({orig}),
            Authority(name="final", level=AuthorityLevel.FINAL,
                      scope_slash8=frozenset({orig >> 24})),
        )
        queriers = small_world.sample_queriers(
            rng, 800, {QuerierRole.NS: 0.4, QuerierRole.HOME: 0.6}
        )
        for i, querier in enumerate(queriers):
            hierarchy.resolve_ptr(querier, orig, now=float(i))
        national = hierarchy.nationals[0]
        roots = sum(len(r.log) for r in hierarchy.roots.values())
        assert len(final.log) > len(national.log) > roots

    def test_national_sees_only_its_space(self, small_world, hierarchy, rng):
        jp_orig = small_world.allocate_originator(rng, country="jp")
        us_orig = small_world.allocate_originator(rng, country="us")
        for orig in (jp_orig, us_orig):
            hierarchy.register_originator(orig, PtrRecordSpec(ttl=30.0))
        queriers = small_world.sample_queriers(rng, 300, {QuerierRole.HOME: 1.0})
        for i, querier in enumerate(queriers):
            hierarchy.resolve_ptr(querier, jp_orig, now=float(i))
            hierarchy.resolve_ptr(querier, us_orig, now=float(i) + 0.5)
        national = hierarchy.nationals[0]
        assert len(national.log) > 0
        assert all(e.originator == jp_orig for e in national.log)

    def test_servfail_answer_propagates(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng)
        hierarchy.register_originator(orig, PtrRecordSpec(reachable=False))
        querier = _one_querier(small_world)
        assert hierarchy.resolve_ptr(querier, orig, now=0.0).rcode is RCode.SERVFAIL

    def test_resolver_identity_stable(self, small_world, hierarchy):
        querier = _one_querier(small_world)
        assert hierarchy.resolver_for(querier) is hierarchy.resolver_for(querier)

    def test_deterministic_logs(self, small_world, rng):
        def run(seed):
            h = DnsHierarchy(small_world, seed=seed)
            b = h.attach_root(
                Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
            )
            local_rng = np.random.default_rng(3)
            orig = 1 << 24 | 5  # fixed, does not touch world allocation state
            h.register_originator(orig, PtrRecordSpec(ttl=30.0))
            queriers = small_world.sample_queriers(
                local_rng, 200, {QuerierRole.NS: 0.5, QuerierRole.HOME: 0.5}
            )
            for i, querier in enumerate(queriers):
                h.resolve_ptr(querier, orig, now=float(i))
            return [(e.timestamp, e.querier) for e in b.log]

        assert run(11) == run(11)

    def test_bad_sensor_attachment_rejected(self, small_world):
        h = DnsHierarchy(small_world)
        with pytest.raises(ValueError):
            h.attach_root(Authority(name="x", level=AuthorityLevel.NATIONAL))
        with pytest.raises(ValueError):
            h.attach_national(Authority(name="x", level=AuthorityLevel.NATIONAL))
        with pytest.raises(ValueError):
            h.attach_final(frozenset(), Authority(name="x", level=AuthorityLevel.ROOT, root_letter="b"))


class TestResolverWarmth:
    def test_shared_resolvers_warmer_than_self(self, small_world):
        config = ResolverConfig(root_warm_shared=1.0, root_warm_self=0.0)
        h = DnsHierarchy(small_world, seed=5, resolver_config=config)
        b = h.attach_root(Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b"))
        m = h.attach_root(Authority(name="m", level=AuthorityLevel.ROOT, root_letter="m"))
        orig = (1 << 24) | 9
        h.register_originator(orig, PtrRecordSpec(ttl=0.0))
        rng = np.random.default_rng(9)
        shared = [
            small_world.queriers[i]
            for i in small_world.indices_for_role(QuerierRole.NS)[:100]
        ]
        selfish = [
            small_world.queriers[i]
            for i in small_world.indices_for_role(QuerierRole.MAIL)[:100]
        ]
        for i, querier in enumerate(shared):
            h.resolve_ptr(querier, orig, now=float(i))
        shared_root = h.stats.root_queries
        for i, querier in enumerate(selfish):
            h.resolve_ptr(querier, orig, now=float(i))
        self_root = h.stats.root_queries - shared_root
        assert shared_root == 0       # fully warm: never ask the root
        assert self_root == len(selfish)  # fully cold: always ask


class TestHierarchyStatsIdentities:
    def test_lookups_split_into_hits_and_resolutions(self, small_world, hierarchy, rng):
        orig = small_world.allocate_originator(rng, country="jp")
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=3600.0))
        queriers = small_world.sample_queriers(rng, 100, {QuerierRole.MAIL: 1.0})
        for i, querier in enumerate(queriers):
            hierarchy.resolve_ptr(querier, orig, now=float(i))
            hierarchy.resolve_ptr(querier, orig, now=float(i) + 1.0)  # cache hit
        stats = hierarchy.stats
        assert stats.lookups == stats.ptr_cache_hits + stats.final_queries
        assert stats.ptr_cache_hits == len(queriers)

    def test_level_counts_ordered(self, small_world, hierarchy, rng):
        # Each resolution hits the final level; upper levels are a subset.
        orig = small_world.allocate_originator(rng, country="jp")
        hierarchy.register_originator(orig, PtrRecordSpec(ttl=30.0))
        queriers = small_world.sample_queriers(
            rng, 300, {QuerierRole.NS: 0.5, QuerierRole.HOME: 0.5}
        )
        for i, querier in enumerate(queriers):
            hierarchy.resolve_ptr(querier, orig, now=float(i))
        stats = hierarchy.stats
        assert stats.final_queries >= stats.national_queries
        assert stats.final_queries >= stats.root_queries
