"""Tests for the engine's exact observability optimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity import SimulationEngine, build_campaign
from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy


class TestObservable:
    def test_no_sensors_nothing_observable(self, small_world):
        hierarchy = DnsHierarchy(small_world, seed=1)
        querier = small_world.queriers[0]
        assert not hierarchy.observable(querier)

    def test_national_sensor_everything_observable(self, small_world):
        hierarchy = DnsHierarchy(small_world, seed=1)
        hierarchy.attach_national(
            Authority(
                name="jp", level=AuthorityLevel.NATIONAL, country="jp",
                scope_slash8=frozenset(small_world.geo.blocks_of("jp")),
            )
        )
        assert all(
            hierarchy.observable(q) for q in small_world.queriers[:100]
        )

    def test_root_only_filters_by_preferred_letter(self, small_world):
        hierarchy = DnsHierarchy(small_world, seed=1)
        hierarchy.attach_root(
            Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
        )
        sample = small_world.queriers[:400]
        observable = [q for q in sample if hierarchy.observable(q)]
        # Some resolvers prefer b, most prefer other letters.
        assert 0 < len(observable) < len(sample)
        for querier in observable:
            assert hierarchy.resolver_for(querier).preferred_root == "b"

    def test_final_sensor_everything_observable(self, small_world):
        hierarchy = DnsHierarchy(small_world, seed=1)
        hierarchy.attach_final(
            frozenset({123}),
            Authority(name="f", level=AuthorityLevel.FINAL,
                      scope_slash8=frozenset({0})),
        )
        assert hierarchy.observable(small_world.queriers[0])


class TestEngineSkipsUnobservable:
    def test_no_sensor_run_is_free(self, small_world, rng):
        hierarchy = DnsHierarchy(small_world, seed=2)
        engine = SimulationEngine(small_world, hierarchy)
        campaign = build_campaign(
            small_world, "spam", rng, start=0.0, duration_days=1.0
        )
        engine.add(campaign)
        stats = engine.run(0.0, 86400.0)
        assert stats.lookup_attempts == 0
        assert hierarchy.stats.lookups == 0

    def test_filter_preserves_root_log(self, small_world):
        # Logs at the sensed root must be identical whether or not the
        # unobservable resolvers are simulated (exactness property).
        campaign = build_campaign(
            small_world, "scan", np.random.default_rng(4), start=0.0, duration_days=1.0,
        )

        def run(force_all: bool):
            hierarchy = DnsHierarchy(small_world, seed=9)
            sensor = hierarchy.attach_root(
                Authority(name="m", level=AuthorityLevel.ROOT, root_letter="m")
            )
            if force_all:
                # Disable the optimization by monkeypatching observable.
                hierarchy.observable = lambda querier: True  # type: ignore[method-assign]
            engine = SimulationEngine(small_world, hierarchy)
            engine.add(campaign)
            engine.run(0.0, 86400.0)
            return [(e.timestamp, e.querier, e.originator) for e in sensor.log]

        assert run(force_all=False) == run(force_all=True)
