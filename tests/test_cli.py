"""Tests for the command-line interface (generate / classify round trip)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "JP-ditl"])
        assert args.dataset == "JP-ditl"
        assert args.preset == "default"

    def test_classify_requires_inputs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify"])


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    output = tmp_path_factory.mktemp("cli")
    code = main(["generate", "B-post-ditl", "--preset", "tiny", "-o", str(output)])
    assert code == 0
    return output


class TestGenerate:
    def test_files_written(self, generated):
        names = {path.name for path in generated.iterdir()}
        assert names == {
            "B-post-ditl.log",
            "B-post-ditl.rbsc",
            "B-post-ditl.queriers.jsonl",
            "B-post-ditl.labels.json",
        }

    def test_text_and_binary_logs_agree(self, generated):
        from repro.datasets import read_log
        from repro.datasets.dnstap import read_frames

        text = read_log(generated / "B-post-ditl.log")
        binary = read_frames(generated / "B-post-ditl.rbsc")
        assert len(text) == len(binary)
        assert all(
            abs(a.timestamp - b.timestamp) < 1e-2
            and a.querier == b.querier
            and a.originator == b.originator
            for a, b in zip(text, binary)
        )

    def test_labels_valid_classes(self, generated):
        from repro.activity import APPLICATION_CLASSES

        labels = json.loads((generated / "B-post-ditl.labels.json").read_text())
        assert labels
        assert set(labels.values()) <= set(APPLICATION_CLASSES)


class TestClassify:
    def test_roundtrip(self, generated, capsys):
        code = main([
            "classify",
            "-l", str(generated / "B-post-ditl.log"),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
            "--min-queriers", "5",
            "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "analyzable" in out
        assert "originator" in out

    def test_empty_log_fails_cleanly(self, tmp_path, generated):
        empty = tmp_path / "empty.log"
        empty.write_text("")
        code = main([
            "classify",
            "-l", str(empty),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
        ])
        assert code == 1


class TestFigures:
    def test_experiments_passthrough_list(self, capsys):
        code = main(["experiments", "--list"])
        assert code == 0
        assert "table3" in capsys.readouterr().out
