"""Tests for the command-line interface: generate / classify round trip,
the uniform work-shaping flags, and metrics snapshots."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "JP-ditl"])
        assert args.dataset == "JP-ditl"
        assert args.preset == "default"

    def test_classify_requires_inputs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify"])


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    output = tmp_path_factory.mktemp("cli")
    code = main(["generate", "B-post-ditl", "--preset", "tiny", "-o", str(output)])
    assert code == 0
    return output


class TestGenerate:
    def test_files_written(self, generated):
        names = {path.name for path in generated.iterdir()}
        assert names == {
            "B-post-ditl.log",
            "B-post-ditl.rbsc",
            "B-post-ditl.npz",
            "B-post-ditl.queriers.jsonl",
            "B-post-ditl.labels.json",
        }

    def test_text_and_binary_logs_agree(self, generated):
        from repro.datasets import read_log
        from repro.datasets.dnstap import read_frames

        text = read_log(generated / "B-post-ditl.log")
        binary = read_frames(generated / "B-post-ditl.rbsc")
        assert len(text) == len(binary)
        assert all(
            abs(a.timestamp - b.timestamp) < 1e-2
            and a.querier == b.querier
            and a.originator == b.originator
            for a, b in zip(text, binary)
        )

    def test_block_matches_binary_log(self, generated):
        from repro.datasets.dnstap import read_frames_block
        from repro.logstore import load_block

        block = load_block(generated / "B-post-ditl.npz")
        frames = read_frames_block(generated / "B-post-ditl.rbsc")
        assert len(block) == len(frames)
        # The .rbsc frames narrow addresses to u32; values are identical.
        assert block == frames

    def test_labels_valid_classes(self, generated):
        from repro.activity import APPLICATION_CLASSES

        labels = json.loads((generated / "B-post-ditl.labels.json").read_text())
        assert labels
        assert set(labels.values()) <= set(APPLICATION_CLASSES)


class TestClassify:
    def test_roundtrip(self, generated, capsys):
        code = main([
            "classify",
            "-l", str(generated / "B-post-ditl.log"),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
            "--min-queriers", "5",
            "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "analyzable" in out
        assert "originator" in out

    def test_block_log_matches_binary(self, generated, capsys):
        """classify accepts .npz / .rbsc inputs and prints the same verdicts."""
        argv = [
            "classify",
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
            "--min-queriers", "5",
            "--top", "5",
        ]
        code = main(argv + ["-l", str(generated / "B-post-ditl.rbsc")])
        assert code == 0
        binary_out = capsys.readouterr().out
        code = main(argv + ["-l", str(generated / "B-post-ditl.npz")])
        assert code == 0
        assert capsys.readouterr().out == binary_out

    def test_empty_log_fails_cleanly(self, tmp_path, generated):
        empty = tmp_path / "empty.log"
        empty.write_text("")
        code = main([
            "classify",
            "-l", str(empty),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
        ])
        assert code == 1


class TestConvert:
    def test_roundtrip_through_every_format(self, generated, tmp_path, capsys):
        from repro.datasets.dnstap import read_frames_block
        from repro.logstore import load_block

        source = generated / "B-post-ditl.rbsc"
        npy = tmp_path / "log.npy"
        rbsc = tmp_path / "log.rbsc"
        assert main(["convert", str(source), "-o", str(npy)]) == 0
        assert main(["convert", str(npy), "-o", str(rbsc)]) == 0
        out = capsys.readouterr().out
        assert f"entries to {npy}" in out and f"entries to {rbsc}" in out
        original = read_frames_block(source)
        assert load_block(npy) == original
        assert read_frames_block(rbsc) == original

    def test_text_output_rounds_milliseconds(self, generated, tmp_path):
        from repro.datasets import read_log_block
        from repro.datasets.dnstap import read_frames_block

        text = tmp_path / "log.log"
        assert main(["convert", str(generated / "B-post-ditl.rbsc"), "-o", str(text)]) == 0
        original = read_frames_block(generated / "B-post-ditl.rbsc")
        converted = read_log_block(text)
        assert len(converted) == len(original)
        assert abs(converted.timestamps - original.timestamps).max() < 1e-2

    def test_unknown_output_suffix_is_an_error(self, generated, tmp_path, capsys):
        # Regression: ``out.np`` (a typo for .npy) used to fall through
        # to the text-format branch and silently write a .log.
        source = generated / "B-post-ditl.rbsc"
        bad = tmp_path / "out.np"
        assert main(["convert", str(source), "-o", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "unsupported output suffix" in err and "'.np'" in err
        assert not bad.exists()

    def test_output_equal_to_input_is_refused(self, generated, tmp_path, capsys):
        source = tmp_path / "log.npy"
        assert main(["convert", str(generated / "B-post-ditl.rbsc"), "-o", str(source)]) == 0
        capsys.readouterr()
        assert main(["convert", str(source), "-o", str(source)]) == 1
        assert "must not be the input" in capsys.readouterr().err


class TestFigures:
    def test_experiments_passthrough_list(self, capsys):
        code = main(["experiments", "--list"])
        assert code == 0
        assert "table3" in capsys.readouterr().out


class TestSharedFlags:
    """--workers / --metrics-out / --metrics-format are uniform across
    the work-running subcommands."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["classify", "-l", "x", "-d", "y", "-t", "z"],
            ["figures"],
            ["experiments", "--list"],
        ],
        ids=["classify", "figures", "experiments"],
    )
    def test_uniform_flags_accepted(self, argv):
        args = build_parser().parse_args(
            argv
            + ["--workers", "2", "--metrics-out", "m.prom", "--metrics-format", "prom"]
        )
        assert args.workers == 2
        assert args.metrics_out == "m.prom"
        assert args.metrics_format == "prom"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["figures"])
        assert args.workers == 1
        assert args.metrics_out is None
        assert args.metrics_format is None

    def test_metrics_format_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figures", "--metrics-out", "m", "--metrics-format", "xml"]
            )

    def test_metrics_every_only_on_classify(self):
        args = build_parser().parse_args(
            ["classify", "-l", "x", "-d", "y", "-t", "z", "--metrics-every", "3"]
        )
        assert args.metrics_every == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--metrics-every", "3"])


class TestMetricsSnapshots:
    def _classify_argv(self, generated, *extra):
        return [
            "classify",
            "-l", str(generated / "B-post-ditl.log"),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
            "--min-queriers", "5",
            "--top", "2",
            *extra,
        ]

    def test_batch_prom_snapshot(self, generated, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(self._classify_argv(
            generated, "--metrics-out", str(out), "--metrics-format", "prom"
        ))
        assert code == 0
        assert f"wrote prom metrics to {out}" in capsys.readouterr().out
        text = out.read_text()
        for family in (
            "repro_stage_seconds",
            "repro_stage_items_total",
            "repro_span_seconds",
            "repro_enrichment_cache_hits_total",
        ):
            assert f"# TYPE {family}" in text, family
        # Every non-comment line is `name{labels} value` or `name value`.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part.startswith("repro_")
            float(value)  # parses

    def test_streaming_jsonl_snapshots(self, generated, tmp_path, capsys):
        out = tmp_path / "metrics.jsonl"
        code = main(self._classify_argv(
            generated,
            "--stream", "--window", "21600",
            "--metrics-out", str(out), "--metrics-every", "1",
        ))
        assert code == 0
        # Periodic snapshots plus the final one append to the same file.
        assert capsys.readouterr().out.count(f"wrote jsonl metrics to {out}") >= 2
        lines = out.read_text().splitlines()
        assert len(lines) > 0
        names = set()
        for line in lines:
            obj = json.loads(line)
            names.add(obj["name"])
        assert "repro_stream_windows_total" in names
        assert "repro_windows_sensed_total" in names

    def test_no_metrics_flag_writes_nothing(self, generated, tmp_path):
        code = main(self._classify_argv(generated))
        assert code == 0
        assert list(tmp_path.iterdir()) == []

    def test_experiments_flags_travel_as_env(self, tmp_path, capsys):
        saved = {
            key: os.environ.pop(key, None)
            for key in (
                "REPRO_FEATURIZE_WORKERS",
                "REPRO_METRICS_OUT",
                "REPRO_METRICS_FORMAT",
            )
        }
        try:
            out = tmp_path / "m.jsonl"
            code = main([
                "experiments", "--list",
                "--workers", "2",
                "--metrics-out", str(out),
                "--metrics-format", "jsonl",
            ])
            assert code == 0
            assert os.environ["REPRO_FEATURIZE_WORKERS"] == "2"
            assert os.environ["REPRO_METRICS_OUT"] == str(out)
            assert os.environ["REPRO_METRICS_FORMAT"] == "jsonl"
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value


class TestSketchFlags:
    def _classify_argv(self, generated, *extra):
        return [
            "classify",
            "-l", str(generated / "B-post-ditl.log"),
            "-d", str(generated / "B-post-ditl.queriers.jsonl"),
            "-t", str(generated / "B-post-ditl.labels.json"),
            "--min-queriers", "5",
            "--top", "2",
            *extra,
        ]

    def test_defaults_off(self):
        args = build_parser().parse_args(
            ["classify", "-l", "x", "-d", "y", "-t", "z"]
        )
        assert args.sketch is False
        assert args.sketch_width == 4096
        assert args.hll_precision == 6

    def test_batch_output_matches_exact(self, generated, capsys):
        code = main(self._classify_argv(generated))
        assert code == 0
        exact_out = capsys.readouterr().out
        code = main(self._classify_argv(generated, "--sketch"))
        assert code == 0
        sketch_out = capsys.readouterr().out
        # Batch sketch mode is two-pass with exact survivor features, so
        # the printed classifications are identical.
        assert sketch_out == exact_out

    def test_stream_accepts_sketch(self, generated, capsys):
        code = main(self._classify_argv(
            generated, "--sketch", "--stream",
            "--sketch-width", "1024", "--hll-precision", "7",
        ))
        assert code == 0
        assert "originators" in capsys.readouterr().out


class TestSketchEnvOverrides:
    def test_env_knobs_build_overrides(self):
        from repro.experiments.common import sketch_overrides

        saved = {
            key: os.environ.pop(key, None)
            for key in (
                "REPRO_SKETCH",
                "REPRO_SKETCH_WIDTH",
                "REPRO_SKETCH_DEPTH",
                "REPRO_SKETCH_HLL_PRECISION",
            )
        }
        try:
            assert sketch_overrides() == {}
            os.environ["REPRO_SKETCH"] = "1"
            os.environ["REPRO_SKETCH_WIDTH"] = "2048"
            assert sketch_overrides() == {
                "sketch_enabled": True,
                "sketch_width": 2048,
                "sketch_depth": 4,
                "hll_precision": 6,
            }
            os.environ["REPRO_SKETCH"] = "off"
            assert sketch_overrides() == {}
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
