"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.hierarchy import RootAffinity
from repro.ml import LabelEncoder
from repro.netmodel.addressing import MAX_IPV4, Prefix
from repro.sensor.keywords import STATIC_CATEGORIES, classify_name

# Realistic-ish hostnames: labels of letters/digits/hyphens joined by dots.
label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)
hostname = st.lists(label, min_size=1, max_size=5).map(".".join)


class TestKeywordMatcherProperties:
    @given(hostname)
    def test_always_returns_known_category(self, name):
        assert classify_name(name) in STATIC_CATEGORIES

    @given(hostname)
    def test_case_insensitive(self, name):
        assert classify_name(name) == classify_name(name.upper())

    @given(hostname)
    def test_trailing_dot_irrelevant(self, name):
        assert classify_name(name) == classify_name(name + ".")

    @given(hostname)
    def test_prefixing_mail_wins(self, name):
        # Left-most component rule: prepending a mail host label decides.
        assert classify_name("mail." + name) == "mail"

    @given(st.text(max_size=40))
    def test_never_crashes_on_arbitrary_text(self, text):
        assert classify_name(text) in STATIC_CATEGORIES


class TestRootAffinityProperties:
    @given(
        st.sampled_from(["na", "asia", "eu", "sa", "oc", "africa", "unknown"]),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_pick_returns_letter_or_other(self, region, seed):
        affinity = RootAffinity()
        rng = np.random.default_rng(seed)
        picked = affinity.pick(region, rng)
        assert picked in ("b", "m", "_other")

    def test_regional_skew(self):
        affinity = RootAffinity()
        rng = np.random.default_rng(0)
        asia = sum(affinity.pick("asia", rng) == "m" for _ in range(2000)) / 2000
        na = sum(affinity.pick("na", rng) == "m" for _ in range(2000)) / 2000
        assert asia > na  # M-Root is Asia-heavy, as deployed


class TestPrefixProperties:
    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=MAX_IPV4),
    )
    def test_membership_matches_bounds(self, network, length, probe):
        prefix = Prefix(network, length)
        inside = prefix.first <= probe <= prefix.last
        assert (probe in prefix) == inside

    @given(st.integers(min_value=0, max_value=MAX_IPV4), st.integers(8, 32))
    def test_parse_str_roundtrip(self, network, length):
        prefix = Prefix(network, length)
        assert Prefix.parse(str(prefix)) == prefix

    @given(st.integers(min_value=0, max_value=MAX_IPV4), st.integers(0, 24))
    def test_subprefix_union_covers(self, network, length):
        prefix = Prefix(network, min(length, 20))
        subs = list(prefix.subprefixes(prefix.length + 4))
        assert len(subs) == 16
        assert subs[0].first == prefix.first
        assert subs[-1].last == prefix.last


class TestLabelEncoderProperties:
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=30))
    def test_encode_decode_roundtrip(self, names):
        encoder = LabelEncoder(sorted(set(names)))
        assert encoder.decode(encoder.encode(names)) == names

    @given(st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=20, unique=True))
    def test_labels_are_dense_range(self, names):
        encoder = LabelEncoder(names)
        codes = encoder.encode(names)
        assert sorted(codes.tolist()) == list(range(len(names)))
