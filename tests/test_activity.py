"""Tests for activity profiles, diurnal patterns, campaigns, and engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import (
    APPLICATION_CLASSES,
    BENIGN_CLASSES,
    MALICIOUS_CLASSES,
    PROFILES,
    SECONDS_PER_DAY,
    DiurnalPattern,
    SimulationEngine,
    TemporalMode,
    build_campaign,
)
from repro.activity.base import _dedup_by_ttl
from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy


class TestProfiles:
    def test_every_class_has_profile(self):
        assert set(PROFILES) == set(APPLICATION_CLASSES)

    def test_malicious_benign_partition(self):
        assert MALICIOUS_CLASSES | BENIGN_CLASSES == set(APPLICATION_CLASSES)
        assert not (MALICIOUS_CLASSES & BENIGN_CLASSES)

    def test_role_weights_positive(self):
        for profile in PROFILES.values():
            assert all(w >= 0 for w in profile.role_weights.values())
            assert sum(profile.role_weights.values()) > 0

    def test_ptr_weights_align(self):
        for profile in PROFILES.values():
            assert len(profile.ptr.ttl_choices) == len(profile.ptr.ttl_weights)

    def test_paper_anchors(self):
        # A few qualitative anchors from Fig 3 / Table II.
        from repro.netmodel.namespace import QuerierRole

        cdn = PROFILES["cdn"]
        assert max(cdn.role_weights, key=cdn.role_weights.get) is QuerierRole.HOME
        for name in ("mail", "spam"):
            profile = PROFILES[name]
            assert max(profile.role_weights, key=profile.role_weights.get) is QuerierRole.MAIL
        assert PROFILES["mail"].attempts_mean < PROFILES["spam"].attempts_mean
        assert PROFILES["cdn"].home_country_bias > PROFILES["spam"].home_country_bias


class TestDiurnal:
    def test_flat_pattern_weight_one(self):
        pattern = DiurnalPattern(strength=0.0)
        for t in (0.0, 3600.0, 50_000.0):
            assert pattern.weight(t) == 1.0

    def test_peak_and_trough(self):
        pattern = DiurnalPattern(strength=0.8, peak_hour=12.0)
        peak = pattern.weight(12 * 3600.0)
        trough = pattern.weight(0.0)
        assert peak == pytest.approx(1.0)
        assert trough == pytest.approx(0.2)

    def test_period_is_24h(self):
        pattern = DiurnalPattern(strength=0.5, peak_hour=9.0)
        assert pattern.weight(1000.0) == pytest.approx(pattern.weight(1000.0 + 86400.0))

    def test_bad_strength_rejected(self):
        with pytest.raises(ValueError):
            DiurnalPattern(strength=1.5)

    def test_thinning_reduces_events(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 86400.0, 5000)
        pattern = DiurnalPattern(strength=0.9, peak_hour=12.0)
        kept = pattern.thin(times, rng)
        assert 0 < len(kept) < len(times)

    @given(st.floats(0, 1), st.floats(0, 24), st.floats(0, 1e6))
    def test_weight_bounds(self, strength, peak, t):
        pattern = DiurnalPattern(strength=strength, peak_hour=peak)
        assert 1.0 - strength - 1e-9 <= pattern.weight(t) <= 1.0 + 1e-9


class TestDedupByTtl:
    def test_spacing_enforced(self):
        times = np.array([0.0, 10.0, 100.0, 150.0, 250.0])
        kept = _dedup_by_ttl(times, ttl=100.0)
        assert list(kept) == [0.0, 100.0, 250.0]

    def test_zero_ttl_keeps_all(self):
        times = np.array([0.0, 0.1, 0.2])
        assert list(_dedup_by_ttl(times, 0.0)) == [0.0, 0.1, 0.2]

    @given(
        st.lists(st.floats(0, 1e5, allow_nan=False), min_size=1, max_size=40),
        st.floats(min_value=1.0, max_value=1e4),
    )
    def test_kept_times_spaced_at_least_ttl(self, times, ttl):
        kept = _dedup_by_ttl(np.array(times), ttl)
        kept = np.sort(kept)
        assert len(kept) >= 1
        assert (np.diff(kept) >= ttl - 1e-9).all()


class TestBuildCampaign:
    @pytest.mark.parametrize("app_class", APPLICATION_CLASSES)
    def test_all_classes_build(self, small_world, rng, app_class):
        campaign = build_campaign(
            small_world, app_class, rng, start=0.0, duration_days=1.0
        )
        assert campaign.app_class == app_class
        assert campaign.footprint >= 20
        assert campaign.total_attempts >= campaign.footprint * 0  # events exist
        assert campaign.end > campaign.start

    def test_unknown_class_rejected(self, small_world, rng):
        with pytest.raises(ValueError):
            build_campaign(small_world, "bogus", rng, start=0.0)

    def test_events_sorted_and_within_range(self, small_world, rng):
        campaign = build_campaign(
            small_world, "spam", rng, start=1000.0, duration_days=2.0
        )
        events = campaign.events_in(0.0, float("inf"))
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(campaign.start <= t < campaign.end for t in times)

    def test_events_in_windowing(self, small_world, rng):
        campaign = build_campaign(
            small_world, "cdn", rng, start=0.0, duration_days=2.0
        )
        first = campaign.events_in(0.0, SECONDS_PER_DAY)
        second = campaign.events_in(SECONDS_PER_DAY, 2 * SECONDS_PER_DAY)
        assert len(first) + len(second) == campaign.total_attempts

    def test_audience_size_respected(self, small_world, rng):
        campaign = build_campaign(
            small_world, "scan", rng, start=0.0, duration_days=1.0, audience_size=50
        )
        assert 25 <= campaign.footprint <= 50  # dedup of pools may shrink slightly

    def test_scan_gets_variant(self, small_world, rng):
        campaign = build_campaign(small_world, "scan", rng, start=0.0, duration_days=1.0)
        assert campaign.variant is not None
        mail = build_campaign(small_world, "mail", rng, start=0.0, duration_days=1.0)
        assert mail.variant is None

    def test_explicit_originator_reused(self, small_world, rng):
        addr = small_world.allocate_originator(rng)
        campaign = build_campaign(
            small_world, "spam", rng, start=0.0, duration_days=1.0, originator=addr
        )
        assert campaign.originator == addr

    def test_home_country_bias_concentrates(self, small_world, rng):
        campaign = build_campaign(
            small_world, "cdn", rng, start=0.0, duration_days=1.0,
            home_country="jp", audience_size=100,
        )
        jp = sum(1 for q in campaign.audience if q.country == "jp")
        assert jp / len(campaign.audience) > 0.3

    def test_deterministic_given_rng_and_world(self):
        # World allocation is stateful, so determinism holds across
        # identically-built worlds, not repeat calls on one world.
        from repro.netmodel import World, WorldConfig

        def build():
            world = World(WorldConfig(seed=3, scale=0.2))
            return build_campaign(
                world, "mail", np.random.default_rng(5), start=0.0, duration_days=1.0
            )

        one, two = build(), build()
        assert one.originator == two.originator
        assert one.footprint == two.footprint
        assert one.total_attempts == two.total_attempts
        assert [q.addr for q in one.audience] == [q.addr for q in two.audience]


class TestEngine:
    def test_runs_and_counts(self, small_world, hierarchy, rng):
        engine = SimulationEngine(small_world, hierarchy)
        campaign = build_campaign(
            small_world, "spam", rng, start=0.0, duration_days=1.0, home_country="jp"
        )
        engine.add(campaign)
        stats = engine.run(0.0, SECONDS_PER_DAY)
        assert stats.lookup_attempts == campaign.total_attempts
        assert stats.campaigns == 1

    def test_chunked_equals_single_run(self, small_world, rng):
        # One shared campaign replayed through two fresh hierarchies:
        # chunk size must not change what any sensor observes.
        campaign = build_campaign(
            small_world, "scan", np.random.default_rng(9), start=0.0, duration_days=2.0
        )

        def simulate(chunk):
            h = DnsHierarchy(small_world, seed=3)
            sensor = h.attach_root(
                Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
            )
            engine = SimulationEngine(small_world, h)
            engine.add(campaign)
            engine.run(0.0, 2 * SECONDS_PER_DAY, chunk_seconds=chunk)
            return [(e.timestamp, e.querier) for e in sensor.log]

        assert simulate(3600.0) == simulate(2 * SECONDS_PER_DAY)

    def test_registers_ptr_spec(self, small_world, hierarchy, rng):
        engine = SimulationEngine(small_world, hierarchy)
        campaign = build_campaign(small_world, "mail", rng, start=0.0, duration_days=1.0)
        engine.add(campaign)
        assert campaign.originator in hierarchy.zonedb

    def test_drop_finished(self, small_world, hierarchy, rng):
        engine = SimulationEngine(small_world, hierarchy)
        early = build_campaign(small_world, "mail", rng, start=0.0, duration_days=1.0)
        late = build_campaign(small_world, "mail", rng, start=10 * SECONDS_PER_DAY, duration_days=1.0)
        engine.extend([early, late])
        dropped = engine.drop_finished(before=5 * SECONDS_PER_DAY)
        assert dropped == 1
        assert engine.campaigns == [late]

    def test_bad_run_args(self, small_world, hierarchy):
        engine = SimulationEngine(small_world, hierarchy)
        with pytest.raises(ValueError):
            engine.run(10.0, 10.0)
        with pytest.raises(ValueError):
            engine.run(0.0, 10.0, chunk_seconds=0.0)
