"""Tests for the CART tree and random forest."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import CartConfig, DecisionTreeClassifier, ForestConfig, RandomForestClassifier


def blobs(seed=0, n=60, classes=3, features=4, spread=3.0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(loc=c * spread, scale=1.0, size=(n, features)) for c in range(classes)]
    )
    y = np.repeat(np.arange(classes), n)
    return X, y


class TestCart:
    def test_fits_separable_data_perfectly(self):
        X, y = blobs(spread=10.0)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_generalizes_on_blobs(self):
        X, y = blobs(seed=1)
        Xt, yt = blobs(seed=2)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(Xt) == yt).mean() > 0.85

    def test_max_depth_zero_is_majority_stump(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        tree = DecisionTreeClassifier(CartConfig(max_depth=0)).fit(X, y)
        assert (tree.predict(X) == 1).all()
        assert tree.depth == 0

    def test_depth_bounded(self):
        X, y = blobs(n=100)
        tree = DecisionTreeClassifier(CartConfig(max_depth=3)).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        # With min_samples_leaf = n there can be no split at all.
        X, y = blobs(n=20, classes=2)
        tree = DecisionTreeClassifier(CartConfig(min_samples_leaf=len(y))).fit(X, y)
        assert tree.node_count == 1

    def test_single_class_degenerates_to_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.zeros(30, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert (tree.predict(X) == 0).all()

    def test_constant_features_fit_without_split(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1

    def test_importances_identify_signal_feature(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 5))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        tree = DecisionTreeClassifier().fit(X, y)
        assert int(np.argmax(tree.feature_importances_)) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_proba_rows_sum_to_one(self):
        X, y = blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_errors(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(RuntimeError):
            tree.predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            tree.fit(np.zeros(3), np.array([0, 1, 0]))
        fitted = DecisionTreeClassifier().fit(*blobs(n=10))
        with pytest.raises(ValueError):
            fitted.predict(np.zeros((2, 99)))

    def test_fit_with_classes_widens_proba(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        tree = DecisionTreeClassifier().fit_with_classes(X, y, n_classes=5)
        assert tree.predict_proba(X).shape == (2, 5)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit_with_classes(X, y, n_classes=1)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, (20, 3), elements=st.floats(-100, 100)),
        arrays(np.int64, (20,), elements=st.integers(0, 3)),
    )
    def test_predictions_always_valid_labels(self, X, y):
        tree = DecisionTreeClassifier().fit(X, y)
        predictions = tree.predict(X)
        assert ((predictions >= 0) & (predictions < tree.n_classes_)).all()


class TestForest:
    def test_beats_chance_and_matches_blobs(self):
        X, y = blobs(seed=5)
        Xt, yt = blobs(seed=6)
        forest = RandomForestClassifier(ForestConfig(n_trees=25), seed=0).fit(X, y)
        assert (forest.predict(Xt) == yt).mean() > 0.9

    def test_single_tree_without_bootstrap_matches_cart(self):
        X, y = blobs(n=40)
        config = ForestConfig(
            n_trees=1, bootstrap=False, max_features=4, max_depth=12,
            min_samples_split=4, min_samples_leaf=2,
        )
        forest = RandomForestClassifier(config, seed=0).fit(X, y)
        tree = DecisionTreeClassifier(
            CartConfig(max_depth=12, min_samples_split=4, min_samples_leaf=2)
        ).fit(X, y)
        assert (forest.predict(X) == tree.predict(X)).all()

    def test_deterministic_given_seed(self):
        X, y = blobs()
        one = RandomForestClassifier(seed=9).fit(X, y).predict(X)
        two = RandomForestClassifier(seed=9).fit(X, y).predict(X)
        assert (one == two).all()

    def test_importances_identify_signal_features(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 6))
        y = ((X[:, 1] > 0) & (X[:, 4] > 0)).astype(int)
        forest = RandomForestClassifier(ForestConfig(n_trees=40), seed=0).fit(X, y)
        top2 = set(np.argsort(forest.feature_importances_)[-2:])
        assert top2 == {1, 4}

    def test_proba_normalized(self):
        X, y = blobs(n=30)
        forest = RandomForestClassifier(ForestConfig(n_trees=10), seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_missing_class_in_bootstrap_is_harmless(self):
        # Tiny data with a rare top label: bootstrap will often miss it.
        X = np.array([[0.0], [1.0], [2.0], [3.0], [10.0]])
        y = np.array([0, 0, 0, 0, 2])
        forest = RandomForestClassifier(ForestConfig(n_trees=30), seed=1).fit(X, y)
        assert forest.predict_proba(X).shape == (5, 3)

    def test_bad_max_features_rejected(self):
        X, y = blobs(n=10)
        with pytest.raises(ValueError):
            RandomForestClassifier(ForestConfig(max_features="bogus")).fit(X, y)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestPermutationImportance:
    def test_signal_feature_ranked_first(self):
        from repro.ml import permutation_importance

        rng = np.random.default_rng(8)
        X = rng.normal(size=(300, 5))
        y = (X[:, 3] > 0).astype(int)
        model = RandomForestClassifier(ForestConfig(n_trees=30), seed=0).fit(X, y)
        drops = permutation_importance(model, X, y, repeats=3, seed=1)
        assert int(np.argmax(drops)) == 3
        assert drops[3] > 0.2

    def test_noise_features_near_zero(self):
        from repro.ml import permutation_importance

        rng = np.random.default_rng(9)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        model = RandomForestClassifier(ForestConfig(n_trees=30), seed=0).fit(X, y)
        drops = permutation_importance(model, X, y, repeats=3, seed=1)
        assert all(abs(d) < 0.1 for i, d in enumerate(drops) if i != 0)

    def test_input_validation(self):
        from repro.ml import permutation_importance

        model = RandomForestClassifier(ForestConfig(n_trees=5), seed=0).fit(
            np.zeros((4, 2)), np.array([0, 1, 0, 1])
        )
        with pytest.raises(ValueError):
            permutation_importance(model, np.zeros((0, 2)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            permutation_importance(model, np.zeros((3, 2)), np.array([0, 1]))
