"""End-to-end service tests: socket feed parity with the offline
streaming path, hot-swap atomicity, surge alerts, and the CLI.

The load-bearing property (the PR's acceptance criterion): a chunked
live feed through `BackscatterService` produces the *same verdict
stream* as the offline `repro classify --stream` path, and an online
retrain-daily hot-swap completes with zero dropped events — every
window present, every window classified by exactly one model version.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.datasets import write_directory
from repro.datasets.dnstap import MAGIC, VERSION
from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock, save_block
from repro.netmodel.addressing import ip_to_str
from repro.netmodel.world import NameStatus
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.service import BackscatterService, ServiceConfig

WIDTH = 100.0


def entry(ts: float, querier: int, originator: int) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


COUNTRIES = ("jp", "us", "de")


def directory_for(queriers: range) -> StaticDirectory:
    return StaticDirectory(
        {
            q: QuerierInfo(
                addr=q,
                name=f"host{q}.example.net",
                status=NameStatus.OK,
                asn=q % 5 + 1,
                country=COUNTRIES[q % len(COUNTRIES)],
            )
            for q in queriers
        }
    )


def synthetic_entries(
    n_originators: int = 8, queriers_per: int = 12, windows: int = 3
) -> list[QueryLogEntry]:
    rng = np.random.default_rng(7)
    out: list[QueryLogEntry] = []
    for w in range(windows):
        for o in range(1, n_originators + 1):
            for k in range(queriers_per):
                q = 100 + (o * 13 + k * 7) % 40
                t = w * WIDTH + float(rng.uniform(0.0, WIDTH - 1.0))
                out.append(entry(t, querier=q, originator=o))
    out.sort(key=lambda e: e.timestamp)
    return out


def rbsc_bytes(block: EntryBlock) -> bytes:
    out = struct.pack(">4sH", MAGIC, VERSION)
    for ts, q, o in zip(block.timestamps, block.queriers, block.originators):
        out += struct.pack(">H", 16) + struct.pack(">dII", float(ts), int(q), int(o))
    return out


def trained_world():
    """Directory, a span-trained trainer engine, labels, and the log."""
    directory = directory_for(range(100, 140))
    config = SensorConfig(window_seconds=WIDTH, min_queriers=3, majority_runs=3)
    entries = synthetic_entries()
    trainer = SensorEngine(directory, config)
    window = trainer.process(entries, 0.0, WIDTH, classify=False)[0]
    labeled = LabeledSet.from_pairs(
        (int(o), "scan" if int(o) % 2 else "dns")
        for o in window.features.originators
    )
    trainer.fit(window.features, labeled)
    return directory, config, trainer, labeled, EntryBlock.from_entries(entries)


def offline_reference(directory, config, trainer, block, chunk=400):
    """The `repro classify --stream` path: same engine, chunked replay."""
    engine = SensorEngine(directory, config).fit_from(trainer)
    windows = []
    unsubscribe = engine.on_window(windows.append)
    for lo in range(0, len(block), chunk):
        engine.ingest_block(block[lo : lo + chunk])
        engine.poll()
    engine.finish()
    unsubscribe()
    return windows


def verdict_records(windows):
    """Offline SensedWindows in the service's /verdicts record shape."""
    return [
        {
            "start": float(w.window.start),
            "end": float(w.window.end),
            "verdicts": [
                {
                    "originator": ip_to_str(int(v.originator)),
                    "app_class": v.app_class,
                    "footprint": int(v.footprint),
                }
                for v in w.verdicts
            ],
        }
        for w in windows
    ]


async def http_get(host: str, port: int, path: str):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


class TestSocketFeedParity:
    def test_chunked_socket_feed_matches_offline_stream(self):
        directory, config, trainer, _, block = trained_world()
        expected = verdict_records(
            offline_reference(directory, config, trainer, block)
        )
        payload = rbsc_bytes(block)

        async def run():
            service = BackscatterService(
                directory, ServiceConfig(port=0, feed_port=0, sensor=config)
            )
            service.fit_from(trainer)
            await service.start()
            fhost, fport = service.feed_address
            _, writer = await asyncio.open_connection(fhost, fport)
            # Deliberately awkward chunk size: frames split mid-record.
            for lo in range(0, len(payload), 1013):
                writer.write(payload[lo : lo + 1013])
                await writer.drain()
            writer.close()
            await writer.wait_closed()
            # EOF flushes the decoder; wait for the pump to see it all.
            while service.events_total < len(block):
                await asyncio.sleep(0.01)
            await service.drain()
            host, port = service.http_address
            status, body = await http_get(host, port, "/verdicts")
            assert status == 200
            live = json.loads(body)["windows"]
            status, body = await http_get(host, port, "/healthz")
            health = json.loads(body)
            await service.stop()
            return service, live, health

        service, live_before_finish, health = asyncio.run(run())
        assert health["events"] == len(block)
        # After stop() the final window has been flushed too.
        final = service.windows()
        assert len(final) == len(expected) == 3
        for got, want in zip(final, expected):
            assert got["start"] == want["start"]
            assert got["end"] == want["end"]
            assert got["verdicts"] == want["verdicts"]
            assert got["model_version"] == 0
        # No event was lost anywhere in the live path.
        ingest = {s.name: s for s in service.engine.accounting()}["ingest"]
        assert ingest.items_in == len(block)
        assert ingest.dropped == 0


class TestHotSwap:
    def test_retrain_daily_swap_drops_nothing_and_keeps_prefix(self):
        directory, config, trainer, labeled, block = trained_world()
        expected = verdict_records(
            offline_reference(directory, config, trainer, block)
        )

        async def run():
            service = BackscatterService(
                directory,
                ServiceConfig(
                    port=0,
                    sensor=config,
                    retrain="daily",
                    retrain_min_per_class=2,
                    retrain_min_total=4,
                ),
            )
            service.fit_from(trainer, labeled=labeled)
            await service.start()
            loop = asyncio.get_running_loop()
            # One submission per window; between them, wait for the
            # background fit so the next step performs a hot-swap.
            for w in range(3):
                lo = int(np.searchsorted(block.timestamps, w * WIDTH))
                hi = int(np.searchsorted(block.timestamps, (w + 1) * WIDTH))
                service.submit_block(block[lo:hi])
                await service.drain()
                await loop.run_in_executor(None, service.manager.wait_pending)
            await service.stop()
            return service

        service = asyncio.run(run())
        # The mid-run swaps happened...
        assert service.swap_outcomes.get("swapped", 0) >= 1
        assert service.model_version >= 1
        # ...and cost nothing: every event ingested, every window emitted.
        assert service.events_total == len(block)
        ingest = {s.name: s for s in service.engine.accounting()}["ingest"]
        assert ingest.items_in == len(block)
        assert ingest.dropped == 0
        final = service.windows()
        assert len(final) == 3
        assert [w["start"] for w in final] == [w["start"] for w in expected]
        # Windows classified by the initial model are bit-identical to
        # the no-retrain offline stream: the swap changed no in-flight
        # window, only later ones.
        v0 = [w for w in final if w["model_version"] == 0]
        assert v0, "at least the first window must predate the first swap"
        for got in v0:
            want = expected[final.index(got)]
            assert got["verdicts"] == want["verdicts"]
        # Every window was classified by exactly one model version, and
        # versions only move forward.
        versions = [w["model_version"] for w in final]
        assert versions == sorted(versions)


class _ConstantScan:
    """Deterministic classifier: everything is label code 0 ('scan')."""

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.zeros(len(X), dtype=int)


def _constant_scan_factory(seed: int) -> _ConstantScan:
    return _ConstantScan()


class TestSurgeAlertE2E:
    def test_injected_surge_raises_alert_through_the_feed(self):
        # Six calm windows with 4 scanners, then a 20-scanner surge.
        directory = directory_for(range(100, 200))
        entries: list[QueryLogEntry] = []
        for w in range(7):
            population = 20 if w == 6 else 4
            for o in range(1, population + 1):
                for k in range(4):
                    entries.append(
                        entry(
                            w * WIDTH + o + k * 10.0,
                            querier=100 + (o * 7 + k) % 90,
                            originator=o,
                        )
                    )
        entries.sort(key=lambda e: e.timestamp)
        block = EntryBlock.from_entries(entries)
        config = SensorConfig(
            window_seconds=WIDTH,
            min_queriers=3,
            majority_runs=3,
            classifier_factory=_constant_scan_factory,
        )
        trainer = SensorEngine(directory, config)
        window = trainer.process(entries, 0.0, WIDTH, classify=False)[0]
        # "scan" first so the constant code 0 decodes to it.
        labeled = LabeledSet.from_pairs([(1, "scan"), (2, "dns"), (3, "scan"), (4, "dns")])
        trainer.fit(window.features, labeled)

        async def run():
            service = BackscatterService(
                directory,
                ServiceConfig(
                    port=0,
                    sensor=config,
                    alert_classes=("scan",),
                    alert_window=6,
                    alert_threshold=3.0,
                ),
            )
            service.fit_from(trainer)
            await service.start()
            for lo in range(0, len(block), 97):
                service.submit_block(block[lo : lo + 97])
            await service.drain()
            await service.stop()
            return service

        service = asyncio.run(run())
        assert service.windows_total == 7
        alerts = service.alerts()
        assert len(alerts) == 1
        assert alerts[0]["app_class"] == "scan"
        assert alerts[0]["observed"] == 20
        assert alerts[0]["score"] >= 3.0


class TestServeCli:
    @pytest.fixture()
    def serialized_world(self, tmp_path):
        directory = directory_for(range(100, 140))
        entries = synthetic_entries()
        block = EntryBlock.from_entries(entries)
        log_path = tmp_path / "feed.npz"
        save_block(log_path, block)
        dir_path = tmp_path / "queriers.jsonl"
        write_directory(
            dir_path, (directory.lookup(q) for q in range(100, 140))
        )
        labels = {
            ip_to_str(o): ("scan" if o % 2 else "dns") for o in range(1, 9)
        }
        labels_path = tmp_path / "labels.json"
        labels_path.write_text(json.dumps(labels))
        return log_path, dir_path, labels_path

    def test_serve_once_replays_and_exits_cleanly(self, serialized_world, capsys):
        from repro.cli import main

        log_path, dir_path, labels_path = serialized_world
        code = main(
            [
                "serve",
                "-l", str(log_path),
                "-d", str(dir_path),
                "-t", str(labels_path),
                "--port", "0",
                "--window", "100",
                "--min-queriers", "3",
                "--chunk", "400",
                "--retrain", "daily",
                "--once",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving http on 127.0.0.1:" in out
        assert "served 3 windows" in out
