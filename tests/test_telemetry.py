"""Tests for repro.telemetry: instruments, spans, export, and the
engine's end-to-end metric emission."""

from __future__ import annotations

import json
import math
import time

import numpy as np
import pytest

from repro.dnssim.message import QueryLogEntry
from repro.netmodel.world import NameStatus
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    current_span_path,
    format_for_path,
    get_registry,
    install,
    observe,
    set_gauge,
    span,
    use_registry,
    write_metrics,
)


@pytest.fixture(autouse=True)
def no_ambient_registry():
    """Every test starts and ends with telemetry uninstalled."""
    previous = install(None)
    yield
    install(previous)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c_total", labels=("stage",))
        counter.inc(stage="ingest")
        counter.inc(3, stage="window")
        assert counter.value(stage="ingest") == 1
        assert counter.value(stage="window") == 3
        assert counter.value(stage="select") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c_total").inc(-1)

    def test_label_mismatch_rejected(self):
        counter = Counter("c_total", labels=("stage",))
        with pytest.raises(ValueError, match="label mismatch"):
            counter.inc(1)
        with pytest.raises(ValueError, match="label mismatch"):
            counter.inc(1, stage="x", extra="y")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("7bad name")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3
        gauge.dec(10)  # gauges may go negative
        assert gauge.value() == -7


class TestHistogram:
    def test_bucket_bounds_are_inclusive(self):
        hist = Histogram("h_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)   # on the bound -> le="1" bucket
        hist.observe(1.5)
        hist.observe(99.0)  # beyond the last bound -> +Inf only
        buckets = dict(
            (bound, cum) for bound, cum in hist.cumulative_buckets()
        )
        assert buckets[1.0] == 1
        assert buckets[2.0] == 2
        assert buckets[math.inf] == 3
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(101.5)

    def test_empty_series_renders_zero_buckets(self):
        hist = Histogram("h_seconds", buckets=(1.0,))
        assert hist.cumulative_buckets() == [(1.0, 0), (math.inf, 0)]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_cover_ms_to_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] == 0.001
        assert DEFAULT_TIME_BUCKETS[-1] == 300.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", labels=("stage",))
        second = registry.counter("c_total", "other help", labels=("stage",))
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("m")

    def test_label_schema_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("m", labels=("b",))

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(2.0,))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "things", labels=("stage",)).inc(2, stage="x")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["series"]["stage=x"] == 2
        hist = snap["h_seconds"]["series"][""]
        assert hist["count"] == 1
        assert hist["buckets"] == {"1": 1, "+Inf": 1}


class TestPrometheusText:
    def test_golden_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs done.", labels=("stage",)).inc(
            3, stage="featurize"
        )
        registry.gauge("depth", "Queue depth.").set(2)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.to_prometheus() == (
            "# HELP depth Queue depth.\n"
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# HELP jobs_total Jobs done.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{stage="featurize"} 3\n'
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 5.55\n"
            "lat_seconds_count 3\n"
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("k",)).inc(1, k='a"b\\c\nd')
        assert 'c_total{k="a\\"b\\\\c\\nd"} 1' in registry.to_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert MetricsRegistry().to_jsonl() == ""


class TestJsonl:
    def test_one_object_per_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("stage",)).inc(1, stage="a")
        registry.counter("c_total", labels=("stage",)).inc(2, stage="b")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        lines = [json.loads(line) for line in registry.to_jsonl().splitlines()]
        assert len(lines) == 3
        kinds = {(obj["name"], obj["kind"]) for obj in lines}
        assert kinds == {("c_total", "counter"), ("h_seconds", "histogram")}


class TestExport:
    def test_format_inference(self):
        assert format_for_path("m.prom") == "prom"
        assert format_for_path("m.txt") == "prom"
        assert format_for_path("m.jsonl") == "jsonl"
        assert format_for_path("m.json") == "jsonl"
        assert format_for_path("m.ndjson") == "jsonl"
        assert format_for_path("m.jsonl", "prom") == "prom"
        with pytest.raises(ValueError):
            format_for_path("m.prom", "xml")

    def test_prom_overwrites_jsonl_appends(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1)
        prom = tmp_path / "m.prom"
        write_metrics(registry, prom)
        write_metrics(registry, prom)
        assert prom.read_text().count("# TYPE c_total") == 1
        jsonl = tmp_path / "m.jsonl"
        write_metrics(registry, jsonl)
        write_metrics(registry, jsonl)
        assert len(jsonl.read_text().splitlines()) == 2


class TestSpans:
    def test_elapsed_measured_without_registry(self):
        assert get_registry() is None
        with span("outer") as sp:
            time.sleep(0.01)
        assert sp.elapsed >= 0.005
        assert current_span_path() == ""

    def test_nesting_records_parent(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with span("outer"):
                assert current_span_path() == "outer"
                with span("inner"):
                    assert current_span_path() == "outer.inner"
        hist = registry.get("repro_span_seconds")
        assert hist.count(span="inner", parent="outer") == 1
        assert hist.count(span="outer", parent="") == 1

    def test_outcome_error_on_exception(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        counter = registry.get("repro_span_total")
        assert counter.value(span="doomed", outcome="error") == 1
        assert counter.value(span="doomed", outcome="ok") == 0

    def test_use_registry_none_keeps_current(self):
        registry = MetricsRegistry()
        install(registry)
        with use_registry(None):
            assert get_registry() is registry
        assert get_registry() is registry

    def test_install_returns_previous(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        assert install(first) is None
        assert install(second) is first
        assert install(None) is second

    def test_helpers_noop_without_registry(self):
        count("c_total", 5)
        set_gauge("g", 1)
        observe("h_seconds", 0.5)  # nothing to assert beyond "no crash"

    def test_count_skips_zero_amounts(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            count("c_total", 0)
        assert "c_total" not in registry

    def test_noop_span_is_cheap(self):
        started = time.perf_counter()
        for _ in range(10_000):
            with span("hot"):
                pass
        # Generous bound: ~10k no-op spans must be far under a second.
        assert time.perf_counter() - started < 1.0


def _tiny_sensed_run(registry):
    directory = StaticDirectory({
        q: QuerierInfo(addr=q, name=f"ns{q}.isp{q % 5}.example.net",
                       status=NameStatus.OK, asn=q % 7,
                       country=["jp", "us", "de"][q % 3])
        for q in range(1, 200)
    })
    rng = np.random.default_rng(0)
    entries = []
    t = 0.0
    for _ in range(3000):
        t += float(rng.exponential(0.05))
        entries.append(QueryLogEntry(
            timestamp=t, querier=int(rng.integers(1, 200)),
            originator=int(rng.integers(1, 20)),
        ))
    engine = SensorEngine(
        directory,
        SensorConfig(window_seconds=60.0, min_queriers=3),
        registry=registry,
    )
    return engine, engine.process(entries, 0.0, t + 1.0, classify=False)


class TestEngineEmission:
    """End-to-end: a batch run emits the documented metric families."""

    def test_expected_families_present(self):
        registry = MetricsRegistry()
        engine, sensed = _tiny_sensed_run(registry)
        assert len(sensed) >= 2
        text = registry.to_prometheus()
        for family in (
            "repro_stage_seconds",
            "repro_stage_items_total",
            "repro_window_seconds",
            "repro_windows_sensed_total",
            "repro_span_seconds",
            "repro_span_total",
            "repro_enrichment_cache_hits_total",
            "repro_enrichment_cache_misses_total",
            "repro_enrichment_cache_built_total",
        ):
            assert f"# TYPE {family}" in text, family

    def test_stage_items_match_stage_stats(self):
        registry = MetricsRegistry()
        engine, _ = _tiny_sensed_run(registry)
        items = registry.get("repro_stage_items_total")
        for stage in engine.accounting():
            if stage.items_in:
                assert items.value(
                    stage=stage.name, direction="in"
                ) == stage.items_in
            if stage.items_out:
                assert items.value(
                    stage=stage.name, direction="out"
                ) == stage.items_out

    def test_windows_counted(self):
        registry = MetricsRegistry()
        _, sensed = _tiny_sensed_run(registry)
        counter = registry.get("repro_windows_sensed_total")
        assert counter.value() == len(sensed)
        hist = registry.get("repro_window_seconds")
        assert hist.count() == len(sensed)

    def test_sensed_window_telemetry_attached(self):
        _, sensed = _tiny_sensed_run(None)  # no registry: still populated
        for item in sensed:
            snapshot = item.telemetry
            assert snapshot is not None
            assert snapshot["window_end"] > snapshot["window_start"]
            assert snapshot["featurized"] <= snapshot["originators"]
            assert snapshot["seconds"]["total"] >= 0.0

    def test_no_registry_no_emission(self):
        engine, sensed = _tiny_sensed_run(None)
        assert get_registry() is None
        assert len(sensed) >= 2  # pipeline output unaffected

    def test_streaming_counters(self):
        registry = MetricsRegistry()
        engine = SensorEngine(
            config=SensorConfig(window_seconds=10.0, reorder_slack=1.0),
            registry=registry,
        )
        entries = [
            QueryLogEntry(timestamp=float(ts), querier=1, originator=2)
            for ts in (0.0, 5.0, 4.5, 25.0, 1.0)  # 4.5 reordered, 1.0 late
        ]
        engine.ingest_many(entries)
        engine.finish()
        engine.accounting()
        text = registry.to_prometheus()
        assert "repro_stream_late_dropped_total 1" in text
        assert "repro_stream_reordered_total 1" in text
        assert "repro_stream_windows_total" in text
