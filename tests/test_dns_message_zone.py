"""Tests for DNS message types, PTR record specs, and name synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnssim.message import PtrQuery, PtrResponse, QType, QueryLogEntry, RCode
from repro.dnssim.zone import (
    DEFAULT_NEGATIVE_TTL,
    PtrRecordSpec,
    national_cut_key,
    root_cut_key,
)
from repro.netmodel.addressing import str_to_ip
from repro.netmodel.asn import ASKind, AutonomousSystem
from repro.netmodel.addressing import Prefix
from repro.netmodel.namespace import NameSynthesizer, QuerierRole


class TestPtrQuery:
    def test_qname_matches_figure_1(self):
        query = PtrQuery(originator=str_to_ip("1.2.3.4"))
        assert query.qname == "4.3.2.1.in-addr.arpa"
        assert query.qtype is QType.PTR

    def test_from_qname_roundtrip(self):
        query = PtrQuery.from_qname("4.3.2.1.in-addr.arpa")
        assert query.originator == str_to_ip("1.2.3.4")


class TestPtrResponse:
    def test_ok_flag(self):
        assert PtrResponse(RCode.NOERROR, "a.example", 60.0).ok
        assert not PtrResponse(RCode.NXDOMAIN, None, 60.0).ok
        assert not PtrResponse(RCode.SERVFAIL, None, 60.0).ok


class TestQueryLogEntry:
    def test_qname_property(self):
        entry = QueryLogEntry(timestamp=0.0, querier=1, originator=str_to_ip("1.2.3.4"))
        assert entry.qname == "4.3.2.1.in-addr.arpa"


class TestPtrRecordSpec:
    def test_defaults_resolve_with_synthesized_name(self):
        response = PtrRecordSpec().response_for(str_to_ip("10.1.2.3"))
        assert response.ok
        assert "10-1-2-3" in response.name

    def test_explicit_name_preserved(self):
        spec = PtrRecordSpec(name="spam.bad.jp")
        assert spec.response_for(1).name == "spam.bad.jp"

    def test_negative_ttl_used_for_nxdomain(self):
        spec = PtrRecordSpec(has_name=False, negative_ttl=42.0)
        response = spec.response_for(1)
        assert response.rcode is RCode.NXDOMAIN and response.ttl == 42.0

    def test_default_negative_ttl(self):
        assert PtrRecordSpec().negative_ttl == DEFAULT_NEGATIVE_TTL


class TestCutKeys:
    def test_root_cut_is_slash8(self):
        assert root_cut_key(str_to_ip("203.5.6.7")) == 203

    def test_national_cut_is_slash16(self):
        assert national_cut_key(str_to_ip("203.5.6.7")) == (203, 5)


@pytest.fixture()
def asystem():
    return AutonomousSystem(
        asn=42, country="jp", kind=ASKind.ISP, name="linx-jp-42",
        prefixes=[Prefix.parse("133.5.0.0/16")],
    )


class TestNameSynthesizer:
    def test_base_domain_stable_per_as(self, asystem):
        namer = NameSynthesizer(np.random.default_rng(0))
        assert namer.base_domain(asystem) == namer.base_domain(asystem)

    def test_home_names_carry_address_digits(self, asystem):
        namer = NameSynthesizer(np.random.default_rng(1))
        addr = str_to_ip("133.5.7.9")
        name = namer.name_for(QuerierRole.HOME, addr, asystem)
        assert "7" in name and "9" in name
        assert name.endswith(namer.base_domain(asystem))

    def test_infrastructure_suffixes(self, asystem):
        namer = NameSynthesizer(np.random.default_rng(2))
        addr = str_to_ip("133.5.7.9")
        assert "amazonaws.com" in namer.name_for(QuerierRole.AWS, addr, asystem)
        assert "azure.com" in namer.name_for(QuerierRole.MS, addr, asystem)
        cdn = namer.name_for(QuerierRole.CDN, addr, asystem)
        assert any(s in cdn for s in ("akamai", "edgecast", "cdngc", "llnw"))

    def test_all_roles_produce_names(self, asystem):
        namer = NameSynthesizer(np.random.default_rng(3))
        addr = str_to_ip("133.5.1.2")
        for role in QuerierRole:
            name = namer.name_for(role, addr, asystem)
            assert name and "." in name

    def test_names_are_valid_hostnames(self, asystem):
        import re

        label = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")
        namer = NameSynthesizer(np.random.default_rng(4))
        addr = str_to_ip("133.5.200.17")
        for role in QuerierRole:
            for piece in namer.name_for(role, addr, asystem).split("."):
                assert label.match(piece), (role, piece)
