"""Tests for the geographic /8 registry and the AS registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netmodel.addressing import Prefix
from repro.netmodel.asn import ASKind, ASRegistry, AutonomousSystem, build_as_registry
from repro.netmodel.geography import DEFAULT_COUNTRIES, build_geo_registry


@pytest.fixture(scope="module")
def geo():
    return build_geo_registry()


@pytest.fixture(scope="module")
def asns(geo):
    return build_as_registry(geo, np.random.default_rng(7))


class TestGeoRegistry:
    def test_allocates_requested_blocks(self, geo):
        assert geo.allocated == 180

    def test_every_country_has_a_block(self, geo):
        for country in DEFAULT_COUNTRIES:
            assert geo.blocks_of(country.code), country.code

    def test_blocks_disjoint(self, geo):
        seen = []
        for country in DEFAULT_COUNTRIES:
            seen.extend(geo.blocks_of(country.code))
        assert len(seen) == len(set(seen)) == geo.allocated

    def test_weight_ordering_roughly_respected(self, geo):
        # US (weight 20) must own more /8s than Finland (weight 0.4).
        assert len(geo.blocks_of("us")) > len(geo.blocks_of("fi"))

    def test_reserved_space_untouched(self, geo):
        for octet in (0, 10, 127, 224, 255):
            assert octet not in geo.blocks

    def test_country_lookup_matches_blocks(self, geo):
        for octet, code in geo.blocks.items():
            assert geo.country_of(octet << 24) == code
            assert geo.country_of((octet << 24) | 0xFFFFFF) == code

    def test_unallocated_lookup_is_none(self, geo):
        assert geo.country_of(10 << 24) is None

    def test_prefixes_of_are_slash8(self, geo):
        for prefix in geo.prefixes_of("jp"):
            assert prefix.length == 8

    def test_overallocation_rejected(self):
        with pytest.raises(ValueError):
            build_geo_registry(total_blocks=300)


class TestASRegistry:
    def test_nonempty_and_kinds_present(self, asns):
        assert len(asns) > 100
        kinds = {a.kind for a in asns}
        assert kinds == set(ASKind)

    def test_asn_of_roundtrip(self, asns):
        for asystem in list(asns)[:50]:
            for prefix in asystem.prefixes:
                assert asns.asn_of(prefix.network) == asystem.asn
                assert asns.asn_of(prefix.last) == asystem.asn

    def test_unrouted_space_is_none(self, asns, geo):
        # Reserved /8 10.x is never allocated to any AS.
        assert asns.asn_of(10 << 24) is None

    def test_in_country_consistent(self, asns):
        for asystem in asns.in_country("jp"):
            assert asystem.country == "jp"

    def test_as_of_returns_object(self, asns):
        asystem = next(iter(asns))
        assert asns.as_of(asystem.prefixes[0].network) is asystem

    def test_prefixes_inside_country_blocks(self, asns, geo):
        for asystem in list(asns)[:80]:
            blocks = set(geo.blocks_of(asystem.country))
            for prefix in asystem.prefixes:
                assert (prefix.network >> 24) in blocks

    def test_duplicate_asn_rejected(self):
        registry = ASRegistry()
        a = AutonomousSystem(1, "us", ASKind.ISP, "x", [Prefix.parse("1.0.0.0/16")])
        registry.add(a)
        dup = AutonomousSystem(1, "us", ASKind.ISP, "y", [Prefix.parse("1.1.0.0/16")])
        with pytest.raises(ValueError):
            registry.add(dup)

    def test_overlapping_prefix_rejected(self):
        registry = ASRegistry()
        registry.add(
            AutonomousSystem(1, "us", ASKind.ISP, "x", [Prefix.parse("1.0.0.0/16")])
        )
        with pytest.raises(ValueError):
            registry.add(
                AutonomousSystem(2, "us", ASKind.ISP, "y", [Prefix.parse("1.0.0.0/16")])
            )

    def test_non_slash16_rejected(self):
        registry = ASRegistry()
        with pytest.raises(ValueError):
            registry.add(
                AutonomousSystem(1, "us", ASKind.ISP, "x", [Prefix.parse("1.0.0.0/8")])
            )

    def test_deterministic_given_seed(self, geo):
        one = build_as_registry(geo, np.random.default_rng(5))
        two = build_as_registry(geo, np.random.default_rng(5))
        assert [a.asn for a in one] == [a.asn for a in two]
        assert [a.prefixes for a in one] == [a.prefixes for a in two]
