"""Tests for the operational window report."""

from __future__ import annotations

import pytest

from repro.analysis.alerts import Alert
from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.report import build_report, render_report


def window_of(sizes: dict[int, int]) -> ObservationWindow:
    window = ObservationWindow(start=0.0, end=7 * 86400.0)
    for originator, size in sizes.items():
        observation = OriginatorObservation(originator=originator)
        for i in range(size):
            observation.add(float(i) * 40, 1000 + i)
        window.observations[originator] = observation
    return window


BLOCK = 0x0A0A0A


@pytest.fixture()
def report():
    sizes = {1: 100, 2: 50, 3: 25, 4: 5}
    classes = {1: "spam", 2: "scan", 3: "scan"}
    classes.update({(BLOCK << 8) | i: "scan" for i in range(1, 4)})
    sizes.update({(BLOCK << 8) | i: 30 for i in range(1, 4)})
    window = window_of(sizes)
    previous = {2: "scan", 9: "mail"}
    alerts = [Alert(day=3.5, app_class="scan", observed=5, baseline=2.0, score=4.2)]
    return build_report(
        window, classes, previous_classification=previous, alerts=alerts
    )


class TestBuildReport:
    def test_counts(self, report):
        assert report.observed_originators == 7
        assert report.analyzable_originators == 6  # the size-5 one is out
        assert report.class_counts == {"spam": 1, "scan": 5}

    def test_top_ranked_by_footprint(self, report):
        footprints = [f for _, f, _ in report.top_originators]
        assert footprints == sorted(footprints, reverse=True)
        assert report.top_originators[0][0] == 1

    def test_churn_against_previous(self, report):
        assert 9 not in {o for o, *_ in report.top_originators} or True
        assert 9 in report.departed_originators
        assert 1 in report.new_originators
        assert 2 not in report.new_originators

    def test_dense_blocks(self, report):
        assert report.dense_blocks
        by_block = dict(report.dense_blocks)
        assert by_block.get(BLOCK) == 3

    def test_no_previous_means_no_new_markers(self):
        window = window_of({1: 30})
        report = build_report(window, {1: "scan"})
        assert report.new_originators == set()
        assert report.departed_originators == set()


class TestRenderReport:
    def test_contains_sections(self, report):
        text = render_report(report)
        assert "# Backscatter sensor report" in text
        assert "## Alerts" in text
        assert "scan surge" in text
        assert "## Largest originators" in text
        assert "## Dense /24 blocks" in text
        assert "10.10.10.0/24" in text

    def test_quiet_report_skips_sections(self):
        window = window_of({1: 30})
        text = render_report(build_report(window, {1: "scan"}))
        assert "## Alerts" not in text
        assert "Dense /24" not in text
        assert "class mix: scan: 1" in text
