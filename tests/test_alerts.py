"""Tests for surge alerting on class-count series."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.alerts import Alert, SurgeDetector, detect_surges


def series_of(counts: list[int], app_class: str = "scan"):
    return [(float(i * 7), {app_class: c}, c) for i, c in enumerate(counts)]


class TestSurgeDetector:
    def test_flat_series_never_alerts(self):
        detector = SurgeDetector("scan")
        for day, count in enumerate([100] * 20):
            assert detector.update(float(day), count) is None

    def test_clear_surge_alerts(self):
        detector = SurgeDetector("scan")
        for day in range(8):
            assert detector.update(float(day), 100) is None
        alert = detector.update(8.0, 200)
        assert alert is not None
        assert alert.observed == 200
        assert alert.baseline == pytest.approx(100.0)
        assert alert.score > 3.0

    def test_no_alert_before_min_baseline(self):
        detector = SurgeDetector("scan", min_baseline=4)
        assert detector.update(0.0, 10) is None
        assert detector.update(1.0, 10) is None
        assert detector.update(2.0, 1000) is None  # only 2 baseline samples

    def test_surge_not_absorbed_into_baseline(self):
        detector = SurgeDetector("scan")
        for day in range(8):
            detector.update(float(day), 100)
        first = detector.update(8.0, 250)
        second = detector.update(9.0, 250)
        assert first is not None
        assert second is not None  # baseline still ~100, so still surging

    def test_small_relative_bumps_suppressed(self):
        # Noise-free baseline -> tiny MAD; the relative guard must hold.
        detector = SurgeDetector("scan", min_relative=0.25)
        for day in range(8):
            detector.update(float(day), 100)
        assert detector.update(8.0, 110) is None

    def test_bad_args(self):
        with pytest.raises(ValueError):
            SurgeDetector("scan", window=1)
        with pytest.raises(ValueError):
            SurgeDetector("scan", threshold=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=50, max_value=60), min_size=10, max_size=40))
    def test_bounded_noise_rarely_alerts(self, counts):
        detector = SurgeDetector("scan", threshold=6.0, min_relative=0.5)
        alerts = [
            detector.update(float(i), c)
            for i, c in enumerate(counts)
        ]
        assert all(a is None for a in alerts)


class TestDetectSurges:
    def test_heartbleed_shape(self):
        # Steady background, one event bump, decay back: exactly Fig 11.
        counts = [100, 104, 98, 101, 99, 103, 180, 170, 120, 100, 101]
        alerts = detect_surges(series_of(counts), window=6, threshold=3.0)
        assert alerts, "the surge was missed"
        assert alerts[0].day == 6 * 7.0
        assert alerts[0].app_class == "scan"

    def test_untrained_windows_skipped(self):
        series = [(0.0, {}, 0), (7.0, {}, 0)] + series_of([100] * 6)[2:]
        alerts = detect_surges(series)
        assert alerts == []

    def test_other_classes_ignored(self):
        series = [
            (float(i * 7), {"scan": 100, "spam": 100 + 50 * (i == 8)}, 200)
            for i in range(10)
        ]
        assert detect_surges(series, app_class="scan") == []
