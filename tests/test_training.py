"""Tests for training-over-time strategies (§ III-E, § V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.cart import DecisionTreeClassifier
from repro.sensor.curation import LabeledSet
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FEATURE_NAMES, FeatureSet
from repro.sensor.training import Strategy, evaluate_strategy


def synthetic_windows(
    n_windows: int,
    drift: float = 0.0,
    departures_per_window: int = 0,
    seed: int = 0,
):
    """Feature windows for 2 classes of 12 originators each.

    Class 0 clusters at feature value 0, class 1 at 4; ``drift`` shifts
    class 1 toward class 0 each window (behavior change), and
    ``departures_per_window`` removes class-1 originators over time
    (activity churn).
    """
    rng = np.random.default_rng(seed)
    originators = {0: list(range(100, 112)), 1: list(range(200, 212))}
    labeled = LabeledSet.from_pairs(
        [(o, "mail") for o in originators[0]] + [(o, "spam") for o in originators[1]]
    )
    windows = []
    for w in range(n_windows):
        active0 = originators[0]
        active1 = originators[1][: max(4, len(originators[1]) - departures_per_window * w)]
        rows, ids = [], []
        for o in active0:
            rows.append(rng.normal(0.0, 0.5, len(FEATURE_NAMES)))
            ids.append(o)
        center = 4.0 - drift * w
        for o in active1:
            rows.append(rng.normal(center, 0.5, len(FEATURE_NAMES)))
            ids.append(o)
        features = FeatureSet(
            originators=np.array(ids, dtype=np.int64),
            matrix=np.stack(rows),
            context=WindowContext(start=0, end=86400, total_ases=1, total_countries=1, total_queriers=1),
            footprints=np.full(len(ids), 30, dtype=np.int64),
        )
        windows.append((float(w), features))
    return windows, labeled


def tree_factory(seed: int):
    return DecisionTreeClassifier(rng=np.random.default_rng(seed))


class TestEvaluateStrategy:
    def test_stable_world_all_strategies_good(self):
        windows, labeled = synthetic_windows(5)
        for strategy in Strategy:
            evaluation = evaluate_strategy(
                strategy, windows, labeled, tree_factory,
                min_per_class=3, min_total=8, majority_runs=1,
            )
            assert evaluation.mean_f1() > 0.9, strategy

    def test_train_once_degrades_under_drift(self):
        windows, labeled = synthetic_windows(8, drift=0.8)
        once = evaluate_strategy(
            Strategy.TRAIN_ONCE, windows, labeled, tree_factory,
            min_per_class=3, min_total=8, majority_runs=1,
        )
        daily = evaluate_strategy(
            Strategy.TRAIN_DAILY, windows, labeled, tree_factory,
            min_per_class=3, min_total=8, majority_runs=1,
        )
        last_once = once.f1_series()[-1][1]
        last_daily = daily.f1_series()[-1][1]
        assert last_daily > last_once

    def test_untrained_windows_reported(self):
        windows, labeled = synthetic_windows(6, departures_per_window=3)
        evaluation = evaluate_strategy(
            Strategy.TRAIN_DAILY, windows, labeled, tree_factory,
            min_per_class=8, min_total=18, majority_runs=1,
        )
        assert evaluation.trained_fraction() < 1.0
        untrained = [s for s in evaluation.scores if not s.trained]
        assert all(s.report is None for s in untrained)

    def test_windows_must_be_ordered(self):
        windows, labeled = synthetic_windows(3)
        with pytest.raises(ValueError):
            evaluate_strategy(
                Strategy.TRAIN_ONCE, list(reversed(windows)), labeled, tree_factory
            )

    def test_empty_windows_rejected(self):
        _, labeled = synthetic_windows(1)
        with pytest.raises(ValueError):
            evaluate_strategy(Strategy.TRAIN_ONCE, [], labeled, tree_factory)

    def test_auto_grow_uses_own_predictions(self):
        # With heavy drift, auto-grow's propagated labels decay; it must
        # never *beat* train-daily, which keeps the curated labels.
        windows, labeled = synthetic_windows(8, drift=0.7, seed=3)
        auto = evaluate_strategy(
            Strategy.AUTO_GROW, windows, labeled, tree_factory,
            min_per_class=3, min_total=8, majority_runs=1, seed=1,
        )
        daily = evaluate_strategy(
            Strategy.TRAIN_DAILY, windows, labeled, tree_factory,
            min_per_class=3, min_total=8, majority_runs=1, seed=1,
        )
        assert auto.mean_f1() <= daily.mean_f1() + 1e-9

    def test_scores_align_with_windows(self):
        windows, labeled = synthetic_windows(4)
        evaluation = evaluate_strategy(
            Strategy.TRAIN_DAILY, windows, labeled, tree_factory,
            min_per_class=3, min_total=8, majority_runs=1,
        )
        assert [s.day for s in evaluation.scores] == [d for d, _ in windows]
