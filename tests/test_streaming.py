"""Tests for the streaming collector, incl. batch-equivalence property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.sensor.collection import collect_window
from repro.sensor.streaming import StreamingCollector


def entry(ts: float, querier: int = 1, originator: int = 2) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


class TestWindowing:
    def test_windows_emitted_at_boundaries(self):
        collector = StreamingCollector(window_seconds=100.0, reorder_slack=0.0)
        collector.ingest(entry(10.0))
        assert collector.pending_windows == 1
        collector.ingest(entry(150.0))  # crosses into window 1
        done = collector.completed_windows()
        assert len(done) == 1
        assert done[0].start == 0.0 and done[0].end == 100.0
        assert 2 in done[0]

    def test_flush_closes_open_windows(self):
        collector = StreamingCollector(window_seconds=100.0)
        collector.ingest(entry(10.0))
        collector.ingest(entry(110.0))
        done = collector.flush()
        assert len(done) == 2
        assert collector.pending_windows == 0

    def test_callback_invoked(self):
        seen = []
        collector = StreamingCollector(
            window_seconds=50.0, reorder_slack=0.0, on_window=seen.append
        )
        collector.ingest(entry(0.0))
        collector.ingest(entry(60.0))
        assert len(seen) == 1

    def test_window_alignment_with_origin(self):
        collector = StreamingCollector(window_seconds=100.0, origin=1000.0)
        collector.ingest(entry(1010.0))
        window = collector.flush()[0]
        assert window.start == 1000.0 and window.end == 1100.0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            StreamingCollector(window_seconds=0.0)
        with pytest.raises(ValueError):
            StreamingCollector(window_seconds=1.0, dedup_window=-1.0)


class TestDedupAndLateness:
    def test_online_dedup(self):
        collector = StreamingCollector(window_seconds=1000.0)
        collector.ingest(entry(0.0))
        collector.ingest(entry(10.0))
        collector.ingest(entry(40.0))
        assert collector.stats.deduplicated == 1
        window = collector.flush()[0]
        assert window.observations[2].query_count == 2

    def test_strictly_late_entries_dropped(self):
        collector = StreamingCollector(window_seconds=1000.0, reorder_slack=2.0)
        collector.ingest(entry(100.0))
        collector.ingest(entry(50.0))  # 50s late, slack is 2s
        assert collector.stats.late_dropped == 1

    def test_slightly_reordered_accepted(self):
        collector = StreamingCollector(window_seconds=1000.0, reorder_slack=5.0)
        collector.ingest(entry(100.0, querier=1))
        collector.ingest(entry(97.0, querier=2))
        assert collector.stats.late_dropped == 0
        window = collector.flush()[0]
        assert window.observations[2].footprint == 2

    def test_pre_origin_entries_dropped(self):
        collector = StreamingCollector(window_seconds=100.0, origin=1000.0)
        collector.ingest(entry(500.0))
        assert collector.stats.late_dropped == 1
        assert collector.pending_windows == 0

    def test_emitted_windows_never_mutated(self):
        collector = StreamingCollector(window_seconds=100.0, reorder_slack=2.0)
        collector.ingest(entry(10.0))
        collector.ingest(entry(200.0))
        first = collector.completed_windows()[0]
        count_before = first.observations[2].query_count
        # This entry belongs to the emitted window but is beyond slack.
        collector.ingest(entry(20.0, querier=9))
        assert first.observations[2].query_count == count_before
        assert collector.stats.late_dropped == 1

    def test_dedup_state_pruned(self):
        collector = StreamingCollector(window_seconds=50.0, reorder_slack=0.0)
        for i in range(5000):
            collector.ingest(entry(float(i), querier=i, originator=i))
        assert collector.dedup_state_size < 5000

    def test_dedup_state_bounded_on_block_fed_long_stream(self):
        # Regression: on the block-fed (ingest_arrays) path inside one
        # long observation window, ``_last_kept`` must stay bounded by
        # the pairs still inside the 30 s dedup horizon — not grow with
        # every distinct pair the stream ever carried.
        dedup = 30.0
        collector = StreamingCollector(
            window_seconds=3000.0, reorder_slack=0.0, dedup_window=dedup
        )
        chunk = 200
        rate = 10.0  # events per second, all distinct pairs
        high_water_state = 0
        for c in range(100):  # 20,000 events over 2,000 s, one window
            base = c * chunk
            ts = base / rate + np.arange(chunk) / rate
            qs = np.arange(base, base + chunk, dtype=np.int64)
            os_ = np.full(chunk, 7, dtype=np.int64)
            collector.ingest_arrays(ts, qs, os_)
            high_water_state = max(high_water_state, collector.dedup_state_size)
        # Live bound: ``rate * dedup`` pairs can still suppress, plus at
        # most one prune cadence (1024 ingested) of unpruned growth.
        assert high_water_state <= int(rate * dedup) + 1024 + chunk
        assert collector.dedup_state_size <= int(rate * dedup) + 1024 + chunk

    def test_dedup_state_bounded_across_ten_windows(self):
        # Ten observation windows, block-fed; window entry resets dedup
        # scope, and within each window the prune keeps only live pairs.
        dedup = 30.0
        collector = StreamingCollector(
            window_seconds=100.0, reorder_slack=0.0, dedup_window=dedup
        )
        chunk = 250
        rate = 10.0
        for c in range(40):  # 10,000 events over 1,000 s = 10 windows
            base = c * chunk
            ts = base / rate + np.arange(chunk) / rate
            qs = np.arange(base, base + chunk, dtype=np.int64)
            os_ = np.full(chunk, 7, dtype=np.int64)
            collector.ingest_arrays(ts, qs, os_)
            assert collector.dedup_state_size <= int(rate * dedup) + 1024 + chunk
        assert len(collector.flush()) == 10

    def test_advance_watermark_closes_windows_without_input(self):
        collector = StreamingCollector(window_seconds=100.0, reorder_slack=0.0)
        collector.ingest(entry(10.0))
        assert collector.completed_windows() == []
        collector.advance_watermark(250.0)
        done = collector.completed_windows()
        assert len(done) == 1
        assert (done[0].start, done[0].end) == (0.0, 100.0)
        # The high water only moves forward; an entry below it is late.
        collector.advance_watermark(50.0)
        collector.ingest(entry(60.0))
        assert collector.stats.late_dropped == 1


class TestBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=950, allow_nan=False),
                st.integers(1, 4),
                st.integers(1, 3),
            ),
            max_size=80,
        )
    )
    def test_matches_batch_collection(self, raw):
        entries = [entry(t, q, o) for t, q, o in sorted(raw, key=lambda r: r[0])]
        collector = StreamingCollector(window_seconds=250.0, reorder_slack=0.0)
        collector.ingest_many(entries)
        streamed = {
            (w.start, w.end): w for w in collector.flush() if len(w)
        }
        # Canonical semantics: each streamed window equals collect_window
        # run on that window's boundaries (dedup state is scoped to the
        # observation window — see sensor/streaming.py).
        for (start, end), window in streamed.items():
            batch = collect_window(entries, start, end)
            assert set(window.observations) == set(batch.observations)
            for originator, observation in window.observations.items():
                expected = batch.observations[originator]
                assert observation.timestamps == expected.timestamps
                assert observation.queriers == expected.queriers
