"""Tests for static/dynamic feature extraction and assembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel.world import NameStatus
from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.directory import EnrichmentCache, QuerierInfo, StaticDirectory
from repro.sensor.dynamic import (
    DYNAMIC_FEATURE_NAMES,
    WindowContext,
    dynamic_features,
)
from repro.sensor.features import (
    FEATURE_NAMES,
    extract_features,
    feature_vector,
    features_from_selected,
)
from repro.sensor.selection import analyzable
from repro.sensor.static import STATIC_FEATURE_NAMES, static_features


def make_directory(specs: dict[int, tuple[str | None, int | None, str | None]]):
    directory = StaticDirectory()
    for addr, (name, asn, country) in specs.items():
        status = NameStatus.OK if name else NameStatus.NXDOMAIN
        directory.add(QuerierInfo(addr=addr, name=name, status=status, asn=asn, country=country))
    return directory


def observation(originator: int, queries: list[tuple[float, int]]):
    obs = OriginatorObservation(originator=originator)
    for ts, querier in queries:
        obs.add(ts, querier)
    return obs


def window_with(observations: list[OriginatorObservation], start=0.0, end=86400.0):
    window = ObservationWindow(start=start, end=end)
    for obs in observations:
        window.observations[obs.originator] = obs
    return window


class TestStaticFeatures:
    def test_fractions_sum_to_one(self):
        directory = make_directory({
            1: ("mail.a.com", 10, "us"),
            2: ("home1-2-3-4.b.com", 11, "jp"),
            3: (None, None, None),
        })
        obs = observation(99, [(0.0, 1), (1.0, 2), (2.0, 3)])
        vector = static_features(obs, directory)
        assert vector.sum() == pytest.approx(1.0)
        assert (vector >= 0).all()

    def test_known_mix(self):
        directory = make_directory({
            1: ("mail.a.com", 10, "us"),
            2: ("mx.b.com", 11, "jp"),
            3: ("firewall1.c.com", 12, "de"),
            4: ("firewall2.c.com", 12, "de"),
        })
        obs = observation(99, [(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 4)])
        named = dict(zip(STATIC_FEATURE_NAMES, static_features(obs, directory)))
        assert named["static_mail"] == pytest.approx(0.5)
        assert named["static_fw"] == pytest.approx(0.5)

    def test_unique_queriers_not_query_volume(self):
        # 100 queries from one mail host and 1 from a firewall: fractions
        # are per-querier (0.5/0.5), not per-query.
        directory = make_directory({
            1: ("mail.a.com", 10, "us"),
            2: ("fw.b.com", 11, "jp"),
        })
        queries = [(float(i) * 40, 1) for i in range(100)] + [(4001.0, 2)]
        named = dict(zip(STATIC_FEATURE_NAMES, static_features(observation(99, queries), directory)))
        assert named["static_mail"] == pytest.approx(0.5)

    def test_empty_observation_rejected(self):
        with pytest.raises(ValueError):
            static_features(OriginatorObservation(originator=1), StaticDirectory())


class TestDynamicFeatures:
    def _context(self, window, directory):
        return WindowContext.from_window(window, directory)

    def test_queries_per_querier(self):
        directory = make_directory({1: ("a.x.com", 1, "us"), 2: ("b.x.com", 1, "us")})
        obs = observation(9, [(0.0, 1), (100.0, 1), (200.0, 2), (300.0, 2)])
        window = window_with([obs])
        vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, self._context(window, directory))))
        assert vector["dyn_queries_per_querier"] == pytest.approx(2.0)

    def test_persistence_counts_periods(self):
        directory = make_directory({1: ("a.x.com", 1, "us")})
        # Queries in three distinct 10-minute periods of a 1-hour window.
        obs = observation(9, [(0.0, 1), (650.0, 1), (1250.0, 1)])
        window = window_with([obs], start=0.0, end=3600.0)
        context = self._context(window, directory)
        vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, context)))
        assert vector["dyn_persistence"] == pytest.approx(3 / 6)

    def test_local_entropy_zero_when_same_slash24(self):
        directory = make_directory({
            0x0A000001: ("a.x.com", 1, "us"),
            0x0A000002: ("b.x.com", 1, "us"),
        })
        obs = observation(9, [(0.0, 0x0A000001), (40.0, 0x0A000002)])
        window = window_with([obs])
        vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, self._context(window, directory))))
        assert vector["dyn_local_entropy"] == 0.0

    def test_global_entropy_max_when_spread(self):
        specs = {(i << 24) | 1: (f"q{i}.x.com", i, "us") for i in range(1, 9)}
        directory = make_directory(specs)
        obs = observation(9, [(float(i), a) for i, a in enumerate(specs)])
        window = window_with([obs])
        vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, self._context(window, directory))))
        assert vector["dyn_global_entropy"] == pytest.approx(1.0)

    def test_unique_as_normalized_by_window(self):
        directory = make_directory({
            1: ("a.x.com", 10, "us"),
            2: ("b.x.com", 20, "jp"),
            3: ("c.x.com", 30, "de"),
        })
        big = observation(8, [(0.0, 1), (40.0, 2), (80.0, 3)])
        small = observation(9, [(0.0, 1)])
        window = window_with([big, small])
        context = self._context(window, directory)
        big_vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(big, directory, context)))
        small_vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(small, directory, context)))
        assert big_vector["dyn_unique_as"] == pytest.approx(1.0)
        assert small_vector["dyn_unique_as"] == pytest.approx(1 / 3)

    def test_single_querier_entropies_are_zero(self):
        directory = make_directory({1: ("a.x.com", 1, "us")})
        obs = observation(9, [(0.0, 1)])
        window = window_with([obs])
        vector = dict(zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, self._context(window, directory))))
        assert vector["dyn_local_entropy"] == 0.0
        assert vector["dyn_global_entropy"] == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 86000), st.integers(1, 2**32 - 1)), min_size=1, max_size=40))
    def test_all_features_finite_and_bounded(self, queries):
        addrs = {q for _, q in queries}
        directory = make_directory({a: (f"host{a}.x.com", a % 50, "us") for a in addrs})
        obs = observation(9, sorted(queries))
        window = window_with([obs])
        context = WindowContext.from_window(window, directory)
        vector = dynamic_features(obs, directory, context)
        assert np.isfinite(vector).all()
        named = dict(zip(DYNAMIC_FEATURE_NAMES, vector))
        assert 0.0 <= named["dyn_persistence"] <= 1.0
        assert 0.0 <= named["dyn_local_entropy"] <= 1.0
        assert 0.0 <= named["dyn_global_entropy"] <= 1.0
        assert named["dyn_queries_per_querier"] >= 1.0


class TestExtractFeatures:
    def test_threshold_filters(self):
        directory = make_directory(
            {i: (f"q{i}.x.com", i, "us") for i in range(1, 40)}
        )
        big = observation(100, [(float(i), i) for i in range(1, 25)])
        small = observation(200, [(0.0, 1), (1.0, 2)])
        window = window_with([big, small])
        features = extract_features(window, directory, min_queriers=20)
        assert list(features.originators) == [100]
        assert features.matrix.shape == (1, len(FEATURE_NAMES))

    def test_empty_window(self):
        features = extract_features(window_with([]), StaticDirectory())
        assert len(features) == 0
        assert features.matrix.shape == (0, len(FEATURE_NAMES))

    def test_row_of_and_subset_and_top(self):
        directory = make_directory({i: (f"q{i}.x.com", i, "us") for i in range(1, 60)})
        a = observation(1000, [(float(i), i) for i in range(1, 31)])
        b = observation(2000, [(float(i), i) for i in range(1, 22)])
        window = window_with([a, b])
        features = extract_features(window, directory)
        assert features.row_of(1000) is not None
        assert features.row_of(3000) is None
        subset = features.subset({2000})
        assert list(subset.originators) == [2000]
        top = features.top(1)
        assert list(top.originators) == [1000]

    def test_feature_names_cover_matrix(self):
        assert len(FEATURE_NAMES) == len(STATIC_FEATURE_NAMES) + len(DYNAMIC_FEATURE_NAMES)


class TestPersistenceBoundary:
    """Regression: a timestamp exactly at window.end must not mint a period."""

    def test_timestamp_at_window_end_clamps_to_last_period(self):
        directory = make_directory({1: ("a.x.com", 1, "us")})
        # 3590 and 3600 both belong to the final 600 s period of [0, 3600):
        # before the clamp, 3600 indexed a phantom 7th period.
        obs = observation(9, [(3590.0, 1), (3600.0, 1)])
        window = window_with([obs], start=0.0, end=3600.0)
        context = WindowContext.from_window(window, directory)
        vector = dict(
            zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, context))
        )
        assert vector["dyn_persistence"] == pytest.approx(1 / 6)

    def test_persistence_never_exceeds_one(self):
        directory = make_directory({1: ("a.x.com", 1, "us")})
        # Single-period window with a query at both bounds: before the
        # clamp this produced persistence 2/1 = 2.0.
        obs = observation(9, [(0.0, 1), (600.0, 1)])
        window = window_with([obs], start=0.0, end=600.0)
        context = WindowContext.from_window(window, directory)
        vector = dict(
            zip(DYNAMIC_FEATURE_NAMES, dynamic_features(obs, directory, context))
        )
        assert vector["dyn_persistence"] == pytest.approx(1.0)

    def test_vectorized_matches_scalar_at_boundary(self):
        directory = make_directory({i: (f"q{i}.x.com", i, "us") for i in range(1, 4)})
        obs = observation(9, [(0.0, 1), (3599.0, 2), (3600.0, 3)])
        window = window_with([obs], start=0.0, end=3600.0)
        features = features_from_selected(window, [obs], directory)
        context = features.context
        scalar = feature_vector(obs, directory, context)
        np.testing.assert_allclose(features.matrix[0], scalar, atol=1e-12)


class TestEmptyObservationSkip:
    def test_features_from_selected_skips_empty(self):
        directory = make_directory({1: ("a.x.com", 1, "us"), 2: ("b.x.com", 2, "jp")})
        full = observation(100, [(0.0, 1), (1.0, 2)])
        empty = OriginatorObservation(originator=200)
        window = window_with([full, empty])
        features = features_from_selected(window, [full, empty], directory)
        assert list(features.originators) == [100]
        assert features.matrix.shape == (1, len(FEATURE_NAMES))

    def test_engine_counts_empty_as_featurize_drop(self, monkeypatch):
        from repro.sensor import engine as engine_mod
        from repro.sensor.engine import SensorConfig, SensorEngine

        directory = make_directory({1: ("a.x.com", 1, "us"), 2: ("b.x.com", 2, "jp")})
        full = observation(100, [(0.0, 1), (1.0, 2)])
        empty = OriginatorObservation(originator=200)
        window = window_with([full, empty])
        # min_queriers >= 1 means selection can't normally pass an empty
        # observation, but degenerate serialized inputs can: simulate one
        # slipping through selection.
        monkeypatch.setattr(engine_mod, "analyzable", lambda w, n: [full, empty])
        engine = SensorEngine(directory, SensorConfig(min_queriers=1))
        features = engine.featurize(window)
        assert list(features.originators) == [100]
        assert engine.stats["featurize"].dropped == 1
        assert engine.stats["featurize"].items_out == 1

    def test_scalar_paths_still_raise(self):
        empty = OriginatorObservation(originator=1)
        window = window_with([empty])
        directory = StaticDirectory()
        context = WindowContext.from_window(window, directory)
        with pytest.raises(ValueError):
            static_features(empty, directory)
        with pytest.raises(ValueError):
            dynamic_features(empty, directory, context)


class TestFeatureSetOrdering:
    def _features(self, sizes: dict[int, int]):
        all_addrs = range(1, 200)
        directory = make_directory(
            {a: (f"q{a}.x.com", a % 7, "us") for a in all_addrs}
        )
        observations = [
            observation(orig, [(float(i), i) for i in range(1, n + 1)])
            for orig, n in sizes.items()
        ]
        window = window_with([o for o in observations])
        return extract_features(window, directory, min_queriers=1)

    def test_subset_returns_matrix_row_order(self):
        # Insertion order 300, 100, 200: subset must preserve row order,
        # not the iteration order of the argument set.
        features = self._features({300: 5, 100: 6, 200: 7})
        assert list(features.originators) == [300, 100, 200]
        subset = features.subset({100, 300})
        assert list(subset.originators) == [300, 100]
        np.testing.assert_array_equal(subset.matrix[0], features.matrix[0])
        np.testing.assert_array_equal(subset.matrix[1], features.matrix[1])

    def test_top_breaks_footprint_ties_by_originator(self):
        # Three originators with identical footprints, inserted in
        # descending-address order: top() must sort ties ascending.
        features = self._features({900: 4, 500: 4, 700: 4})
        top = features.top(2)
        assert list(top.originators) == [500, 700]

    def test_top_prefers_larger_footprints(self):
        features = self._features({10: 3, 20: 9, 30: 6})
        assert list(features.top(2).originators) == [20, 30]


class TestParallelFeaturize:
    @settings(max_examples=5, deadline=None)
    @given(st.data())
    def test_workers4_bit_identical_to_serial(self, data):
        n_origs = data.draw(st.integers(3, 12), label="n_origs")
        directory = make_directory(
            {a: (f"host{a}.x.com", a % 9, ["us", "jp", "de"][a % 3]) for a in range(1, 120)}
        )
        observations = []
        for i in range(n_origs):
            pairs = data.draw(
                st.lists(
                    st.tuples(st.floats(0, 86000), st.integers(1, 119)),
                    min_size=1,
                    max_size=25,
                ),
                label=f"obs{i}",
            )
            observations.append(observation(1000 + i, sorted(pairs)))
        window = window_with(observations)
        selected = analyzable(window, 1)
        serial = features_from_selected(window, selected, directory, workers=1)
        parallel = features_from_selected(window, selected, directory, workers=4)
        np.testing.assert_array_equal(serial.originators, parallel.originators)
        np.testing.assert_array_equal(serial.footprints, parallel.footprints)
        np.testing.assert_array_equal(serial.matrix, parallel.matrix)

    def test_cache_is_window_scoped_not_global(self):
        # Mutating the directory between featurize calls must be picked
        # up: each call builds a fresh window-scoped cache.
        directory = make_directory({1: ("mail.a.com", 1, "us"), 2: ("mx.b.com", 2, "jp")})
        obs = observation(50, [(0.0, 1), (1.0, 2)])
        window = window_with([obs])
        before = features_from_selected(window, [obs], directory)
        directory.add(
            QuerierInfo(
                addr=1,
                name="firewall.a.com",
                status=NameStatus.OK,
                asn=1,
                country="us",
            )
        )
        after = features_from_selected(window, [obs], directory)
        names = dict(zip(FEATURE_NAMES, before.matrix[0]))
        renames = dict(zip(FEATURE_NAMES, after.matrix[0]))
        assert names["static_mail"] == pytest.approx(1.0)
        assert renames["static_mail"] == pytest.approx(0.5)
        assert renames["static_fw"] == pytest.approx(0.5)

    def test_explicit_cache_snapshot_ignores_mutation(self):
        # The flip side: within one window, a shared cache is a snapshot.
        directory = make_directory({1: ("mail.a.com", 1, "us")})
        cache = EnrichmentCache(directory)
        obs = observation(50, [(0.0, 1)])
        window = window_with([obs])
        before = features_from_selected(window, [obs], cache)
        directory.add(
            QuerierInfo(
                addr=1, name="firewall.a.com", status=NameStatus.OK, asn=1, country="us"
            )
        )
        after = features_from_selected(window, [obs], cache)
        np.testing.assert_array_equal(before.matrix, after.matrix)

    def test_workers_must_be_positive(self):
        directory = make_directory({1: ("a.x.com", 1, "us")})
        obs = observation(9, [(0.0, 1)])
        window = window_with([obs])
        with pytest.raises(ValueError):
            features_from_selected(window, [obs], directory, workers=0)
