"""Block ingest == object ingest, end to end.

Property tests pinning the array ingest plane's central contract: feeding
the pipeline columnar :class:`~repro.logstore.EntryBlock` chunks produces
**bit-identical** windows, observation order, and stats to the historical
per-object paths — on adversarial logs with timestamp ties, window-
boundary straddles, disorder within the reorder slack, and strictly-late
drops.  Also pins the satellite behaviors that ride along: upfront order
validation in ``collect_window``, the lazily-cached unique-querier view,
and deterministic arrival-order release of reorder-buffer ties.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock
from repro.sensor.collection import (
    OriginatorObservation,
    collect_window,
)
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.streaming import StreamingCollector


def make_entries(rows):
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in rows]


def window_signature(window):
    """Everything downstream stages consume, including dict order."""
    return (
        window.start,
        window.end,
        [
            (originator, tuple(obs.timestamps), tuple(obs.queriers))
            for originator, obs in window.observations.items()
        ],
    )


def stats_signature(stats):
    return (
        stats.ingested,
        stats.deduplicated,
        stats.late_dropped,
        stats.reordered,
        stats.windows_emitted,
    )


# Coarse timestamps force ties and near-horizon gaps; tiny id spaces
# force pair collisions — the adversarial regime for dedup and ordering.
rows_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=90.0).map(lambda t: round(t, 1)),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=50,
)


class TestCollectWindowBlock:
    @given(rows_strategy, st.sampled_from([0.0, 1.0, 30.0]))
    @settings(max_examples=150, deadline=None)
    def test_block_matches_object_path(self, rows, dedup_window):
        rows.sort(key=lambda r: r[0])
        entries = make_entries(rows)
        block = EntryBlock.from_entries(entries)
        via_objects = collect_window(entries, 0.0, 100.0, dedup_window)
        via_block = collect_window(block, 0.0, 100.0, dedup_window)
        assert window_signature(via_block) == window_signature(via_objects)

    @given(rows_strategy)
    @settings(max_examples=100, deadline=None)
    def test_boundary_straddles_filtered_identically(self, rows):
        rows.sort(key=lambda r: r[0])
        entries = make_entries(rows)
        block = EntryBlock.from_entries(entries)
        # A window interval strictly inside the data span: out-of-range
        # entries on both sides must be filtered before dedup.
        via_objects = collect_window(entries, 20.0, 60.0)
        via_block = collect_window(block, 20.0, 60.0)
        assert window_signature(via_block) == window_signature(via_objects)
        for obs in via_block.observations.values():
            assert all(20.0 <= t < 60.0 for t in obs.timestamps)

    def test_unsorted_input_raises_before_building_state(self):
        """Regression (satellite): unsorted in-range input used to raise
        mid-iteration, after part of the window was already built; order
        is now validated upfront for both input forms."""
        entries = make_entries([(5.0, 1, 1), (3.0, 2, 2), (7.0, 3, 3)])
        with pytest.raises(ValueError, match="not time-ordered"):
            collect_window(entries, 0.0, 10.0)
        with pytest.raises(ValueError, match="not time-ordered"):
            collect_window(EntryBlock.from_entries(entries), 0.0, 10.0)

    def test_unsorted_outside_range_is_harmless(self):
        # Disorder confined to out-of-range entries doesn't affect the
        # window and is not an error.
        entries = make_entries([(50.0, 1, 1), (2.0, 2, 2), (5.0, 3, 3)])
        window = collect_window(entries, 4.0, 10.0)
        assert len(window) == 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="end must be after start"):
            collect_window([], 10.0, 10.0)
        with pytest.raises(ValueError, match="non-negative"):
            collect_window([], 0.0, 10.0, dedup_window=-1.0)


class TestStreamingBlockEquivalence:
    @given(
        rows_strategy,
        st.sampled_from([0.0, 2.0, 5.0]),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=150, deadline=None)
    def test_chunked_block_matches_per_entry(self, rows, slack, chunk):
        """Same stream (disorder, late drops, ties and all) fed both ways."""
        entries = make_entries(rows)
        scalar = StreamingCollector(20.0, reorder_slack=slack)
        for entry in entries:
            scalar.ingest(entry)
        scalar_windows = scalar.completed_windows() + scalar.flush()

        block = StreamingCollector(20.0, reorder_slack=slack)
        for lo in range(0, len(entries), chunk):
            block.ingest_block(EntryBlock.from_entries(entries[lo : lo + chunk]))
        block_windows = block.completed_windows() + block.flush()

        assert [window_signature(w) for w in block_windows] == [
            window_signature(w) for w in scalar_windows
        ]
        assert stats_signature(block.stats) == stats_signature(scalar.stats)

    @given(rows_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_interleaving_scalar_and_block_ingest(self, rows, chunk):
        """The two ingest forms share one collector state machine."""
        entries = make_entries(rows)
        reference = StreamingCollector(20.0, reorder_slack=2.0)
        for entry in entries:
            reference.ingest(entry)
        mixed = StreamingCollector(20.0, reorder_slack=2.0)
        scalar_turn = True
        for lo in range(0, len(entries), chunk):
            part = entries[lo : lo + chunk]
            if scalar_turn:
                for entry in part:
                    mixed.ingest(entry)
            else:
                mixed.ingest_block(EntryBlock.from_entries(part))
            scalar_turn = not scalar_turn
        assert [window_signature(w) for w in mixed.flush()] == [
            window_signature(w) for w in reference.flush()
        ]
        assert stats_signature(mixed.stats) == stats_signature(reference.stats)

    def test_tie_release_is_arrival_order(self):
        """Satellite: equal timestamps held in the reorder buffer release
        in arrival order, even across chunk boundaries."""
        rows = [(10.0, 1, 1), (10.0, 2, 1), (10.0, 3, 1), (10.0, 4, 1)]
        for chunk in (1, 2, 4):
            collector = StreamingCollector(20.0, reorder_slack=5.0)
            for lo in range(0, len(rows), chunk):
                collector.ingest_block(
                    EntryBlock.from_entries(make_entries(rows[lo : lo + chunk]))
                )
            (window,) = collector.flush()
            (obs,) = window.observations.values()
            assert obs.queriers == [1, 2, 3, 4], f"chunk={chunk}"

    def test_late_drops_counted_identically(self):
        rows = [(30.0, 1, 1), (5.0, 2, 2), (31.0, 3, 3)]  # 5.0 is > slack late
        scalar = StreamingCollector(20.0, reorder_slack=2.0)
        for entry in make_entries(rows):
            scalar.ingest(entry)
        block = StreamingCollector(20.0, reorder_slack=2.0)
        block.ingest_block(EntryBlock.from_entries(make_entries(rows)))
        assert scalar.stats.late_dropped == block.stats.late_dropped == 1
        assert stats_signature(block.stats) == stats_signature(scalar.stats)


class TestEngineBlockEquivalence:
    @pytest.mark.parametrize("sketch", [False, True])
    def test_windows_batch_block_matches_object(self, sketch):
        rng = np.random.default_rng(7)
        n = 4000
        rows = sorted(
            zip(
                (rng.random(n) * 80.0).round(1).tolist(),
                rng.integers(0, 40, n).tolist(),
                rng.integers(0, 12, n).tolist(),
            )
        )
        entries = make_entries(rows)
        config = SensorConfig(
            window_seconds=20.0,
            min_queriers=2,
            sketch_enabled=sketch,
            sketch_capacity=4 * n,
        )
        via_objects = SensorEngine(config=config).windows(entries, 0.0, 80.0)
        via_block = SensorEngine(config=config).windows(
            EntryBlock.from_entries(entries), 0.0, 80.0
        )
        assert [window_signature(w) for w in via_block] == [
            window_signature(w) for w in via_objects
        ]

    def test_windows_rejects_unsorted_block(self):
        block = EntryBlock.from_entries(make_entries([(5.0, 1, 1), (3.0, 2, 2)]))
        with pytest.raises(ValueError, match="not time-ordered"):
            SensorEngine(config=SensorConfig(window_seconds=10.0)).windows(
                block, 0.0, 10.0
            )


class TestLazyUniqueQueriers:
    """Satellite: the unique-querier set is computed on demand and cached,
    not materialized alongside every append."""

    def test_not_materialized_by_add(self):
        obs = OriginatorObservation(originator=1)
        obs.add(1.0, 10)
        obs.add(2.0, 10)
        assert obs._unique is None

    def test_cached_after_first_read_and_invalidated_by_writes(self):
        obs = OriginatorObservation(originator=1)
        obs.add(1.0, 10)
        assert obs.footprint == 1
        assert obs._unique is not None
        cached = obs.unique_queriers
        assert obs.unique_queriers is cached  # no recompute
        obs.add(2.0, 11)
        assert obs._unique is None  # add invalidates
        assert obs.footprint == 2
        obs.extend_lists([3.0], [11])
        assert obs._unique is None  # bulk append invalidates
        assert obs.footprint == 2
        obs.extend_arrays(np.array([4.0]), np.array([12]))
        assert obs._unique is None
        assert obs.footprint == 3
